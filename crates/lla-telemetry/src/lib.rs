//! # `lla-telemetry` — observability primitives for the LLA stack
//!
//! LLA is a *continuously-running* online optimizer: in production there is
//! no final answer, only a trajectory. The operational signals are the dual
//! variables themselves — prices, violation factors, convergence state —
//! plus the plumbing counters of the distributed runtime (drops,
//! retransmits, checkpoint restores). This crate provides the three pieces
//! every layer shares:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket histograms
//!   behind cheap cloneable handles. Handles are lock-free on the hot path
//!   (plain atomics) and collapse to a branch-on-bool no-op when the
//!   registry is disabled. Exposition is deterministic Prometheus text.
//! * [`EventLog`] / [`Event`] — structured, timestamped events. The
//!   distributed runtime stamps events with its *virtual* clock, so chaos
//!   soaks produce byte-identical JSONL logs across runs with the same
//!   seed; the optimizer hot path uses wall-clock histograms instead and
//!   never writes events.
//! * [`HealthSnapshot`] — the "is it converged and feasible right now?"
//!   answer: KKT residual norms, worst violation factor, per-resource
//!   price + usage, and shed/membership/failover counts.
//! * [`SpanRecorder`] / [`TraceCtx`] — causal spans on the virtual clock
//!   with Chrome `trace_event` export and per-round critical-path
//!   extraction, same no-op-when-disabled handle discipline.
//! * [`Profiler`] — hierarchical scoped-guard phase profiling: self and
//!   total nanoseconds plus call counts per scope path, thread-aware
//!   accumulation, folded-stack flamegraph export, and a deterministic
//!   call-count tree kept separate from the wall-clock timings.
//! * [`DiagnosticsEngine`] — an online classifier over per-round
//!   [`DiagSample`]s: `Converging | Oscillating | GammaThrash |
//!   Diverging | Stalled`, with per-resource price evidence.
//! * [`TelemetryCollector`] / [`AgentScope`] — the fleet telemetry plane:
//!   per-agent scoped counters (labeled series keyed by an `agent`
//!   label), delta-encoded watermarked [`TelemetryReport`]s, and a
//!   loss/dup/reorder-tolerant collector producing a deterministic fleet
//!   view.
//! * [`SloEngine`] — declarative [`SloRule`]s evaluated over the fleet
//!   view on the virtual clock, driving a pending → firing → resolved
//!   alert state machine whose transitions are byte-deterministic events.
//!
//! The crate is deliberately dependency-free (std only) so it can sit
//! below `lla-core` in the workspace graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collect;
pub mod diagnostics;
pub mod events;
pub mod health;
pub mod profile;
pub mod registry;
pub mod slo;
pub mod spans;

pub use collect::{
    AgentScope, AgentView, DeltaTracker, IngestOutcome, MetricDef, TelemetryCollector,
    TelemetryReport, MAX_REORDER_HORIZON,
};
pub use diagnostics::{
    DiagSample, Diagnosis, DiagnosticsEngine, Verdict, DIVERGENCE_FACTOR, GAMMA_THRASH_DENSITY,
    OSCILLATION_BAND, STALL_FROZEN_FRACTION,
};
pub use events::{Event, EventLog, Value};
pub use health::{HealthSnapshot, ResourceHealth, HEALTHY_MAX_VIOLATION_FACTOR};
pub use profile::{ProfileCtx, ProfileFrame, ProfileGuard, ProfileSnapshot, Profiler};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use slo::{AlertCmp, AlertSeverity, AlertState, FiringAlert, SloEngine, SloRule};
pub use spans::{PathStep, RoundCriticalPath, Span, SpanRecorder, TraceCtx};

/// One bundle of the two telemetry channels — a metrics registry and an
/// event log — so call sites thread a single handle through a stack.
///
/// Both halves are cheap to clone (`Arc`s inside) and both support a
/// disabled mode in which every operation is a branch-on-bool no-op, so a
/// `TelemetryHub::disabled()` can be threaded unconditionally.
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    /// Counter/gauge/histogram registry (Prometheus text exposition).
    pub metrics: MetricsRegistry,
    /// Structured event stream (JSONL exposition).
    pub events: EventLog,
    /// Causal span recorder (Chrome trace exposition). Disabled by
    /// default even in a recording hub — spans accumulate per message, so
    /// long soaks opt in explicitly via [`with_spans`](Self::with_spans).
    pub spans: SpanRecorder,
}

impl TelemetryHub {
    /// A hub that records metrics and events (spans stay off; see
    /// [`with_spans`](Self::with_spans)).
    pub fn recording() -> Self {
        TelemetryHub {
            metrics: MetricsRegistry::new(),
            events: EventLog::recording(),
            spans: SpanRecorder::disabled(),
        }
    }

    /// A hub whose every operation is a no-op.
    pub fn disabled() -> Self {
        TelemetryHub {
            metrics: MetricsRegistry::disabled(),
            events: EventLog::disabled(),
            spans: SpanRecorder::disabled(),
        }
    }

    /// Replace the span channel (builder style) — usually with
    /// [`SpanRecorder::recording()`].
    #[must_use]
    pub fn with_spans(mut self, spans: SpanRecorder) -> Self {
        self.spans = spans;
        self
    }

    /// Whether any channel is live.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.events.is_enabled() || self.spans.is_enabled()
    }
}

/// Render a float the way every exporter in this crate does: Rust's
/// shortest-roundtrip `Display`, which is deterministic across platforms
/// for the same bit pattern. Non-finite values render as Prometheus
/// spellings (`+Inf`, `-Inf`, `NaN`).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}
