//! Causal spans on the virtual clock: trace recording, Chrome
//! `trace_event` export, and per-round critical-path extraction.
//!
//! A [`Span`] is an interval `[start, end]` on the emitter's clock with a
//! trace id and a parent span id, so one price-dissemination chain —
//! tick → message delivery → handling → ack — reads as a single causal
//! tree. Inside `lla-dist` every timestamp is the *virtual* clock and
//! span/trace ids come from deterministic counters, so a seeded run
//! produces a byte-identical Chrome trace JSON on every execution (pinned
//! by a golden file in `tests/telemetry.rs`).
//!
//! Recording follows the same no-op-when-disabled handle pattern as
//! [`MetricsRegistry`](crate::MetricsRegistry): a
//! [`SpanRecorder::disabled()`] drops every span at a branch and hands
//! back [`TraceCtx::NONE`], so instrumented code threads the recorder
//! unconditionally. Recording never sends messages, never draws
//! randomness, and never touches algorithm floats — the passivity
//! invariant the lla-dist identity tests assert.

use crate::events::{json_escape, json_value, Value};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Causal context propagated alongside (never inside) protocol messages:
/// the trace a span belongs to and the parent span id for its children.
///
/// `TraceCtx` is an envelope-level companion — `lla-dist` carries it next
/// to each queued delivery rather than widening `Message`, so the wire
/// protocol, message equality, and message counts are untouched by
/// tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id; `0` means "no trace" (recording disabled or root).
    pub trace: u64,
    /// Parent span id for children; `0` means "no parent".
    pub span: u64,
}

impl TraceCtx {
    /// The absent context: new spans recorded under it open a new trace.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    /// Whether this context carries no trace.
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span id, unique within the recorder (ids start at 1).
    pub id: u64,
    /// Trace this span belongs to (trace ids start at 1).
    pub trace: u64,
    /// Parent span id, `0` for a trace root.
    pub parent: u64,
    /// Static name, e.g. `"tick"`, `"price"`, `"drop"`.
    pub name: &'static str,
    /// Index into [`SpanRecorder::track_names`] — the rendering lane,
    /// usually the address of the agent the span executes on.
    pub track: usize,
    /// Start time in the emitter's clock domain (virtual ms in lla-dist).
    pub start: f64,
    /// End time; `end == start` marks an instant span.
    pub end: f64,
    /// Ordered key/value fields; order is preserved in exposition.
    pub fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// The span's duration (`end - start`).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[derive(Debug, Default)]
struct SpanStore {
    spans: Vec<Span>,
    tracks: Vec<String>,
    next_trace: u64,
}

impl SpanStore {
    fn intern(&mut self, track: &str) -> usize {
        if let Some(i) = self.tracks.iter().position(|t| t == track) {
            return i;
        }
        self.tracks.push(track.to_owned());
        self.tracks.len() - 1
    }
}

/// A shared span recorder. Cloning shares the buffer; a disabled recorder
/// drops every span at a branch and returns [`TraceCtx::NONE`], so
/// instrumented code needs no `Option` plumbing.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    enabled: bool,
    core: Arc<Mutex<SpanStore>>,
}

impl SpanRecorder {
    /// A recorder that records spans.
    pub fn recording() -> Self {
        SpanRecorder { enabled: true, core: Arc::new(Mutex::new(SpanStore::default())) }
    }

    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Self {
        SpanRecorder { enabled: false, core: Arc::new(Mutex::new(SpanStore::default())) }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span and return the context its children should use.
    ///
    /// If `parent` carries no trace a fresh trace id is allocated and the
    /// span becomes that trace's root. Disabled recorders return
    /// [`TraceCtx::NONE`] without recording.
    pub fn span(
        &self,
        name: &'static str,
        track: &str,
        start: f64,
        end: f64,
        parent: TraceCtx,
    ) -> TraceCtx {
        self.span_with(name, track, start, end, parent, Vec::new())
    }

    /// [`span`](Self::span) with attached fields.
    pub fn span_with(
        &self,
        name: &'static str,
        track: &str,
        start: f64,
        end: f64,
        parent: TraceCtx,
        fields: Vec<(&'static str, Value)>,
    ) -> TraceCtx {
        if !self.enabled {
            return TraceCtx::NONE;
        }
        let mut store = self.core.lock().expect("span store poisoned");
        let trace = if parent.trace == 0 {
            store.next_trace += 1;
            store.next_trace
        } else {
            parent.trace
        };
        let id = store.spans.len() as u64 + 1;
        let track = store.intern(track);
        store.spans.push(Span { id, trace, parent: parent.span, name, track, start, end, fields });
        TraceCtx { trace, span: id }
    }

    /// Record an instant span (`end == start`).
    pub fn instant(&self, name: &'static str, track: &str, at: f64, parent: TraceCtx) -> TraceCtx {
        self.span(name, track, at, at, parent)
    }

    /// [`instant`](Self::instant) with attached fields.
    pub fn instant_with(
        &self,
        name: &'static str,
        track: &str,
        at: f64,
        parent: TraceCtx,
        fields: Vec<(&'static str, Value)>,
    ) -> TraceCtx {
        self.span_with(name, track, at, at, parent, fields)
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.core.lock().expect("span store poisoned").spans.len()
    }

    /// Whether the recorder holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A clone of the recorded spans, in record order.
    pub fn snapshot(&self) -> Vec<Span> {
        self.core.lock().expect("span store poisoned").spans.clone()
    }

    /// Track names in interning order; [`Span::track`] indexes this list.
    pub fn track_names(&self) -> Vec<String> {
        self.core.lock().expect("span store poisoned").tracks.clone()
    }

    /// Distinct trace ids in first-seen order.
    pub fn trace_ids(&self) -> Vec<u64> {
        let store = self.core.lock().expect("span store poisoned");
        let mut out: Vec<u64> = Vec::new();
        for s in &store.spans {
            if !out.contains(&s.trace) {
                out.push(s.trace);
            }
        }
        out
    }

    /// Export every span as Chrome `trace_event` JSON, loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Tracks become threads (one `thread_name` metadata event per track),
    /// spans become `"ph":"X"` complete events with microsecond
    /// timestamps (`virtual ms × 1000`). Output is byte-deterministic for
    /// a given recording: one event per line, record order preserved.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        self.write_chrome_events(&mut out, &mut first);
        out.push_str("\n]}\n");
        out
    }

    /// [`to_chrome_json`](Self::to_chrome_json) with the frames of a
    /// profiler snapshot merged in as a second process (`pid` 2, track
    /// "profiler"): each scope node becomes one `"ph":"X"` event whose
    /// microsecond duration is its inclusive time and whose start is laid
    /// out depth-first — children nest inside their parent and siblings
    /// abut — so the aggregate tree renders as a flamegraph alongside the
    /// virtual-clock spans.
    pub fn to_chrome_json_with_profile(&self, profile: &crate::profile::ProfileSnapshot) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        self.write_chrome_events(&mut out, &mut first);
        if !profile.is_empty() {
            push_event_sep(&mut out, &mut first);
            out.push_str(
                "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_name\",\
                 \"args\":{\"name\":\"profiler\"}}",
            );
            // (start µs, consumed µs) per open ancestor; frames arrive in
            // depth-first order so a stack reconstructs the layout.
            let mut stack: Vec<(f64, f64)> = Vec::new();
            let mut root_cursor = 0.0_f64;
            for f in &profile.frames {
                stack.truncate(f.depth);
                let total_us = f.total_ns as f64 / 1_000.0;
                let start = match stack.last_mut() {
                    Some((parent_start, consumed)) => {
                        let start = *parent_start + *consumed;
                        *consumed += total_us;
                        start
                    }
                    None => {
                        let start = root_cursor;
                        root_cursor += total_us;
                        start
                    }
                };
                stack.push((start, 0.0));
                push_event_sep(&mut out, &mut first);
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":{},\"dur\":{},\"name\":\"{}\",\
                     \"args\":{{\"calls\":{},\"self_ns\":{}}}}}",
                    json_value(&Value::F64(start)),
                    json_value(&Value::F64(total_us)),
                    json_escape(&f.path),
                    f.calls,
                    f.self_ns
                ));
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the track-metadata and span events shared by both Chrome
    /// exporters (byte-identical to the historical single-process form).
    fn write_chrome_events(&self, out: &mut String, first: &mut bool) {
        let store = self.core.lock().expect("span store poisoned");
        for (tid, name) in store.tracks.iter().enumerate() {
            push_event_sep(out, first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ));
        }
        for s in &store.spans {
            push_event_sep(out, first);
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\
                 \"args\":{{\"trace\":{},\"span\":{}",
                s.track,
                json_value(&Value::F64(s.start * 1_000.0)),
                json_value(&Value::F64(s.duration() * 1_000.0)),
                json_escape(s.name),
                s.trace,
                s.id,
            ));
            if s.parent != 0 {
                out.push_str(&format!(",\"parent\":{}", s.parent));
            }
            for (k, v) in &s.fields {
                out.push_str(&format!(",\"{}\":{}", json_escape(k), json_value(v)));
            }
            out.push_str("}}");
        }
    }

    /// The critical path of one trace: the root-to-leaf parent chain
    /// ending at the trace's latest-ending span (earliest-recorded span
    /// wins ties). Empty if the trace id is unknown.
    pub fn critical_path(&self, trace: u64) -> Vec<PathStep> {
        let store = self.core.lock().expect("span store poisoned");
        critical_chain(&store, trace)
    }

    /// Group traces into rounds of `round_length` by their root span's
    /// start time and report, per round, the chain that gated it: the
    /// critical path of the trace with the latest span end in the round.
    ///
    /// The `gating_track` is the track of the longest step on that chain —
    /// for the distributed runtime, the resource/controller whose inbound
    /// link delay dominated the round.
    ///
    /// # Panics
    ///
    /// Panics if `round_length` is not strictly positive.
    pub fn round_critical_paths(&self, round_length: f64) -> Vec<RoundCriticalPath> {
        assert!(round_length > 0.0, "round_length must be positive");
        let store = self.core.lock().expect("span store poisoned");
        // Per trace: the round of its root and its latest span end.
        let mut traces: Vec<(u64, u64, f64)> = Vec::new(); // (trace, round, latest_end)
        for s in &store.spans {
            if s.parent == 0 {
                traces.push(((s.trace), (s.start / round_length).floor() as u64, f64::MIN));
            }
        }
        for s in &store.spans {
            if let Some(t) = traces.iter_mut().find(|(trace, _, _)| *trace == s.trace) {
                if s.end > t.2 {
                    t.2 = s.end;
                }
            }
        }
        let mut rounds: Vec<u64> = traces.iter().map(|&(_, round, _)| round).collect();
        rounds.sort_unstable();
        rounds.dedup();
        let mut out = Vec::with_capacity(rounds.len());
        for round in rounds {
            let mut gating: Option<(u64, f64)> = None;
            for &(trace, r, end) in &traces {
                if r == round && gating.is_none_or(|(_, best)| end > best) {
                    gating = Some((trace, end));
                }
            }
            let (trace, end) = gating.expect("round has at least one trace");
            let chain = critical_chain(&store, trace);
            let gating_track = chain
                .iter()
                .max_by(|a, b| {
                    (a.end - a.start).partial_cmp(&(b.end - b.start)).expect("finite durations")
                })
                .map(|s| s.track.clone())
                .unwrap_or_default();
            out.push(RoundCriticalPath { round, trace, end, gating_track, chain });
        }
        out
    }
}

fn push_event_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn critical_chain(store: &SpanStore, trace: u64) -> Vec<PathStep> {
    let mut leaf: Option<&Span> = None;
    for s in &store.spans {
        if s.trace == trace && leaf.is_none_or(|best| s.end > best.end) {
            leaf = Some(s);
        }
    }
    let Some(leaf) = leaf else {
        return Vec::new();
    };
    let mut chain = Vec::new();
    let mut cur = Some(leaf);
    while let Some(s) = cur {
        chain.push(PathStep {
            name: s.name,
            track: store.tracks.get(s.track).cloned().unwrap_or_default(),
            start: s.start,
            end: s.end,
        });
        // Span ids are 1-based indices into the record-order vec.
        cur = if s.parent == 0 { None } else { store.spans.get(s.parent as usize - 1) };
    }
    chain.reverse();
    chain
}

/// One step of a critical path, root-first.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The span's name.
    pub name: &'static str,
    /// The span's track name (agent address in lla-dist).
    pub track: String,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// The chain that gated one round's settling.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundCriticalPath {
    /// Round index (`floor(root_start / round_length)`).
    pub round: u64,
    /// The gating trace's id.
    pub trace: u64,
    /// When the round's last causal chain ended.
    pub end: f64,
    /// Track of the longest step on the chain — the bottleneck
    /// resource/link for the round.
    pub gating_track: String,
    /// The gating chain itself, root-first.
    pub chain: Vec<PathStep>,
}

impl fmt::Display for RoundCriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {:>4}: gated by {} (end {:.3})", self.round, self.gating_track, self.end)?;
        for (i, step) in self.chain.iter().enumerate() {
            let sep = if i == 0 { "  " } else { " → " };
            write!(f, "{sep}{}[{}]", step.name, step.track)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_and_returns_none() {
        let rec = SpanRecorder::disabled();
        let ctx = rec.span("tick", "a", 0.0, 1.0, TraceCtx::NONE);
        assert_eq!(ctx, TraceCtx::NONE);
        assert!(ctx.is_none());
        assert!(rec.is_empty());
        assert!(!rec.is_enabled());
        assert_eq!(rec.to_chrome_json(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\n]}\n");
    }

    #[test]
    fn spans_chain_parents_and_allocate_traces() {
        let rec = SpanRecorder::recording();
        let root = rec.span("tick", "resource[0]", 0.0, 0.0, TraceCtx::NONE);
        assert_eq!(root, TraceCtx { trace: 1, span: 1 });
        let child = rec.span("price", "controller[0]", 0.0, 1.5, root);
        assert_eq!(child, TraceCtx { trace: 1, span: 2 });
        let other = rec.span("tick", "resource[1]", 2.0, 2.0, TraceCtx::NONE);
        assert_eq!(other.trace, 2, "rootless spans open fresh traces");
        let spans = rec.snapshot();
        assert_eq!(spans[1].parent, 1);
        assert_eq!(spans[1].trace, 1);
        assert_eq!(rec.trace_ids(), vec![1, 2]);
        assert_eq!(rec.track_names(), vec!["resource[0]", "controller[0]", "resource[1]"]);
    }

    #[test]
    fn chrome_json_is_deterministic_and_wellformed() {
        let build = || {
            let rec = SpanRecorder::recording();
            let root = rec.span("tick", "resource[0]", 1.25, 1.25, TraceCtx::NONE);
            rec.span_with(
                "price",
                "controller[1]",
                1.25,
                3.0,
                root,
                vec![("from", Value::from("resource[0]")), ("dup", Value::from(true))],
            );
            rec.to_chrome_json()
        };
        let a = build();
        assert_eq!(a, build(), "same recording must render byte-identically");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(a.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"resource[0]\"}}"
        ));
        assert!(a.contains("\"ts\":1250,\"dur\":0,\"name\":\"tick\""));
        assert!(a.contains("\"ts\":1250,\"dur\":1750,\"name\":\"price\""));
        assert!(a.contains("\"parent\":1,\"from\":\"resource[0]\",\"dup\":true"));
        assert!(a.ends_with("\n]}\n"));
    }

    #[test]
    fn critical_path_walks_to_latest_leaf() {
        let rec = SpanRecorder::recording();
        let root = rec.span("tick", "controller[0]", 0.0, 0.0, TraceCtx::NONE);
        // Fast branch ends at 1.0; slow branch at 4.0 with a deeper chain.
        let fast = rec.span("latency", "resource[0]", 0.0, 1.0, root);
        rec.span("handle", "resource[0]", 1.0, 1.0, fast);
        let slow = rec.span("latency", "resource[1]", 0.0, 3.5, root);
        rec.span("handle", "resource[1]", 3.5, 4.0, slow);
        let chain = rec.critical_path(root.trace);
        let names: Vec<_> = chain.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["tick", "latency", "handle"]);
        assert_eq!(chain[1].track, "resource[1]", "slow branch wins");
        assert!(rec.critical_path(99).is_empty());
    }

    #[test]
    fn round_critical_paths_name_the_bottleneck_resource() {
        // Constructed workload: two rounds of length 10. In round 0 the
        // link into resource[1] is slowest; in round 1, resource[0].
        let rec = SpanRecorder::recording();
        let t0 = rec.span("tick", "controller[0]", 2.5, 2.5, TraceCtx::NONE);
        rec.span("latency", "resource[0]", 2.5, 3.0, t0);
        rec.span("latency", "resource[1]", 2.5, 7.75, t0);
        let t1 = rec.span("tick", "controller[0]", 12.5, 12.5, TraceCtx::NONE);
        rec.span("latency", "resource[0]", 12.5, 19.0, t1);
        rec.span("latency", "resource[1]", 12.5, 13.0, t1);
        let rounds = rec.round_critical_paths(10.0);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].round, 0);
        assert_eq!(rounds[0].gating_track, "resource[1]");
        assert_eq!(rounds[0].end, 7.75);
        assert_eq!(rounds[1].round, 1);
        assert_eq!(rounds[1].gating_track, "resource[0]");
        let line = rounds[1].to_string();
        assert!(line.contains("gated by resource[0]"), "{line}");
        assert!(line.contains("tick[controller[0]] → latency[resource[0]]"), "{line}");
    }

    #[test]
    #[should_panic(expected = "round_length must be positive")]
    fn round_paths_reject_zero_length() {
        let _ = SpanRecorder::recording().round_critical_paths(0.0);
    }

    #[test]
    fn clones_share_the_buffer() {
        let rec = SpanRecorder::recording();
        let other = rec.clone();
        other.instant("x", "t", 1.0, TraceCtx::NONE);
        assert_eq!(rec.len(), 1);
    }
}
