//! Deterministic SLO alerting over the fleet view.
//!
//! Declarative [`SloRule`]s are evaluated on the virtual clock against a
//! [`TelemetryCollector`]: each evaluation computes the *delta* of the
//! rule's metric since the previous evaluation (a rate per evaluation
//! interval) and compares it against the threshold. The alert state
//! machine is the Prometheus one:
//!
//! ```text
//!            cond                   held for `for_ms`
//! inactive ───────► pending ──────────────────────────► firing
//!     ▲                │ !cond (cancelled)                 │ !cond
//!     └────────────────┴───────────────────────────────────┘ (resolved)
//! ```
//!
//! Every transition is emitted as a structured `alert` event stamped with
//! the virtual clock, so a seeded run produces a byte-deterministic alert
//! timeline.

use crate::collect::TelemetryCollector;
use crate::events::{Event, EventLog};

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Worth a look.
    Warning,
    /// Worth a page — and a supervisor remediation trigger.
    Critical,
}

impl AlertSeverity {
    /// Stable kebab-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }
}

/// Comparison between the observed per-evaluation delta and the rule
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertCmp {
    /// Delta strictly greater than the threshold.
    Gt,
    /// Delta at least the threshold.
    Ge,
    /// Delta strictly less than the threshold.
    Lt,
    /// Delta at most the threshold.
    Le,
}

impl AlertCmp {
    /// Stable symbol.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertCmp::Gt => ">",
            AlertCmp::Ge => ">=",
            AlertCmp::Lt => "<",
            AlertCmp::Le => "<=",
        }
    }

    fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            AlertCmp::Gt => value > threshold,
            AlertCmp::Ge => value >= threshold,
            AlertCmp::Lt => value < threshold,
            AlertCmp::Le => value <= threshold,
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name (the alert's identity in events and logs).
    pub name: String,
    /// Dictionary metric name (see
    /// [`MetricDef::name`](crate::collect::MetricDef)).
    pub metric: String,
    /// Restrict to one agent's series, or `None` for the fleet aggregate.
    pub agent: Option<String>,
    /// Comparison applied to the per-evaluation delta.
    pub cmp: AlertCmp,
    /// Threshold the delta is compared against.
    pub threshold: f64,
    /// How long (virtual ms) the condition must hold before the alert
    /// moves from pending to firing. `0.0` fires on the same evaluation.
    pub for_ms: f64,
    /// Severity attached to the alert's events.
    pub severity: AlertSeverity,
}

/// Alert state on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertState {
    /// Condition false.
    Inactive,
    /// Condition true since `since`, not yet held `for_ms`.
    Pending {
        /// When the condition first held.
        since: f64,
    },
    /// Condition held `for_ms`; firing since `since`.
    Firing {
        /// When the alert started firing.
        since: f64,
    },
}

impl AlertState {
    /// Stable kebab-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending { .. } => "pending",
            AlertState::Firing { .. } => "firing",
        }
    }
}

/// A currently-firing alert, as consumed by the supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringAlert {
    /// The rule's name.
    pub rule: String,
    /// The rule's severity.
    pub severity: AlertSeverity,
    /// When the alert started firing (virtual ms).
    pub since: f64,
}

#[derive(Debug, Clone)]
struct RuleState {
    state: AlertState,
    baseline: Option<f64>,
}

/// Evaluates a rule set over successive fleet views, driving the alert
/// state machine and emitting transition events.
#[derive(Debug, Clone)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
    transitions: u64,
}

impl SloEngine {
    /// An engine over the given rules.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleState { state: AlertState::Inactive, baseline: None })
            .collect();
        SloEngine { rules, states, transitions: 0 }
    }

    /// The installed rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Replace the rule set; all alert state resets to inactive.
    pub fn set_rules(&mut self, rules: Vec<SloRule>) {
        *self = SloEngine::new(rules);
    }

    /// Total state transitions so far (pending + firing + resolutions).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Current state of rule `idx`.
    pub fn state(&self, idx: usize) -> AlertState {
        self.states[idx].state
    }

    /// Every currently-firing alert.
    pub fn firing(&self) -> Vec<FiringAlert> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter_map(|(rule, st)| match st.state {
                AlertState::Firing { since } => {
                    Some(FiringAlert { rule: rule.name.clone(), severity: rule.severity, since })
                }
                _ => None,
            })
            .collect()
    }

    /// Evaluate every rule against `fleet` at virtual time `now`,
    /// emitting one `alert` event per state transition into `events`.
    ///
    /// The first evaluation of a rule only establishes its delta baseline
    /// (a rule cannot fire on absolute totals accumulated before the
    /// engine started watching).
    pub fn evaluate(&mut self, now: f64, fleet: &TelemetryCollector, events: &EventLog) {
        for (rule, st) in self.rules.iter().zip(self.states.iter_mut()) {
            let value = fleet.metric_value(&rule.metric, rule.agent.as_deref()).unwrap_or(0.0);
            let Some(baseline) = st.baseline.replace(value) else { continue };
            let delta = value - baseline;
            let cond = rule.cmp.holds(delta, rule.threshold);
            let emit = |state: &'static str, transitions: &mut u64| {
                *transitions += 1;
                events.emit(
                    Event::new(now, "alert")
                        .with("rule", rule.name.clone())
                        .with("metric", rule.metric.clone())
                        .with("scope", rule.agent.clone().unwrap_or_else(|| "fleet".to_owned()))
                        .with("state", state)
                        .with("severity", rule.severity.as_str())
                        .with("value", delta)
                        .with("threshold", rule.threshold),
                );
            };
            match (st.state, cond) {
                (AlertState::Inactive, true) => {
                    st.state = AlertState::Pending { since: now };
                    emit("pending", &mut self.transitions);
                }
                (AlertState::Pending { .. }, false) => {
                    st.state = AlertState::Inactive;
                    emit("cancelled", &mut self.transitions);
                }
                (AlertState::Firing { .. }, false) => {
                    st.state = AlertState::Inactive;
                    emit("resolved", &mut self.transitions);
                }
                _ => {}
            }
            if let AlertState::Pending { since } = st.state {
                if cond && now - since >= rule.for_ms {
                    st.state = AlertState::Firing { since: now };
                    emit("firing", &mut self.transitions);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{MetricDef, TelemetryCollector, TelemetryReport};

    const DICT: &[MetricDef] = &[MetricDef { name: "overloaded_ticks", help: "overload" }];

    fn rule(for_ms: f64) -> SloRule {
        SloRule {
            name: "overload".into(),
            metric: "overloaded_ticks".into(),
            agent: None,
            cmp: AlertCmp::Gt,
            threshold: 0.0,
            for_ms,
            severity: AlertSeverity::Critical,
        }
    }

    fn feed(col: &mut TelemetryCollector, seq: u64, watermark: f64, delta: u64) {
        let deltas = if delta > 0 { vec![(0, delta)] } else { vec![] };
        col.ingest(&TelemetryReport { agent: "a".into(), seq, watermark, deltas });
    }

    #[test]
    fn pending_firing_resolved_lifecycle() {
        let mut col = TelemetryCollector::new(DICT);
        let mut slo = SloEngine::new(vec![rule(20.0)]);
        let events = EventLog::recording();

        feed(&mut col, 1, 0.0, 0);
        slo.evaluate(0.0, &col, &events); // baseline
        assert_eq!(slo.state(0), AlertState::Inactive);

        feed(&mut col, 2, 10.0, 3);
        slo.evaluate(10.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Pending { since: 10.0 });

        feed(&mut col, 3, 20.0, 2);
        slo.evaluate(20.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Pending { since: 10.0 });

        feed(&mut col, 4, 30.0, 2);
        slo.evaluate(30.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Firing { since: 30.0 });
        assert_eq!(slo.firing().len(), 1);

        feed(&mut col, 5, 40.0, 0);
        slo.evaluate(40.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Inactive);
        assert!(slo.firing().is_empty());

        let kinds: Vec<String> = events
            .snapshot()
            .iter()
            .filter(|e| e.kind == "alert")
            .map(|e| format!("{:?}", e.field("state").unwrap()))
            .collect();
        assert_eq!(kinds.len(), 3, "pending, firing, resolved");
        assert_eq!(slo.transitions(), 3);
    }

    #[test]
    fn pending_cancels_without_firing_when_condition_clears() {
        let mut col = TelemetryCollector::new(DICT);
        let mut slo = SloEngine::new(vec![rule(50.0)]);
        let events = EventLog::recording();
        feed(&mut col, 1, 0.0, 0);
        slo.evaluate(0.0, &col, &events);
        feed(&mut col, 2, 10.0, 1);
        slo.evaluate(10.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Pending { since: 10.0 });
        feed(&mut col, 3, 20.0, 0);
        slo.evaluate(20.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Inactive);
        assert_eq!(slo.transitions(), 2, "pending then cancelled");
    }

    #[test]
    fn zero_for_duration_fires_on_the_same_evaluation() {
        let mut col = TelemetryCollector::new(DICT);
        let mut slo = SloEngine::new(vec![rule(0.0)]);
        let events = EventLog::recording();
        feed(&mut col, 1, 0.0, 0);
        slo.evaluate(0.0, &col, &events);
        feed(&mut col, 2, 10.0, 1);
        slo.evaluate(10.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Firing { since: 10.0 });
    }

    #[test]
    fn per_agent_rules_track_only_their_agent() {
        let mut col = TelemetryCollector::new(DICT);
        let mut r = rule(0.0);
        r.agent = Some("b".into());
        let mut slo = SloEngine::new(vec![r]);
        let events = EventLog::recording();
        feed(&mut col, 1, 0.0, 0);
        slo.evaluate(0.0, &col, &events);
        // Agent `a` overloads; the rule watches `b` and stays quiet.
        feed(&mut col, 2, 10.0, 5);
        slo.evaluate(10.0, &col, &events);
        assert_eq!(slo.state(0), AlertState::Inactive);
    }
}
