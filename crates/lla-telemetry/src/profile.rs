//! Hierarchical scoped-guard phase profiler.
//!
//! [`Profiler`] attributes wall-clock nanoseconds and call counts to a
//! tree of named scopes: entering a scope pushes it onto an implicit
//! per-thread stack, dropping the guard pops it and charges the elapsed
//! time to the node identified by the *path* of enclosing scopes. The
//! same handle discipline as the rest of the crate applies — a disabled
//! handle is a branch-on-bool no-op that reads no clock, takes no lock,
//! and allocates nothing, so `Profiler::disabled()` can be threaded
//! through hot loops unconditionally.
//!
//! ## Determinism split
//!
//! The node tree and its **call counts** are deterministic: they depend
//! only on which code paths executed, never on how long they took, and
//! every exporter sorts sibling scopes by name (interning order may vary
//! when worker threads race to create nodes). Wall-clock **timings** are
//! inherently non-deterministic and are kept in separate fields and
//! separate exporters ([`ProfileSnapshot::folded_ns`] vs
//! [`ProfileSnapshot::folded_calls`]), so golden tests pin the
//! calls-folded output byte-for-byte while flamegraphs read the ns
//! variant.
//!
//! ## Threads
//!
//! Accumulation is thread-aware: the scope stack lives in thread-local
//! storage while the node tree is shared behind the handle's `Arc`, so
//! guards on different threads charge the same tree concurrently. A
//! worker thread starts with an empty stack; fan-out call sites capture
//! a [`ProfileCtx`] with [`Profiler::ctx`] before spawning and re-anchor
//! via [`Profiler::scope_in`] so worker scopes nest under the spawning
//! scope instead of becoming roots.

use std::cell::Cell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::MetricsRegistry;

/// Sentinel node index meaning "no parent" (a root scope).
const NONE: usize = usize::MAX;

thread_local! {
    /// (profiler core address, current node index) for the innermost
    /// open scope on this thread. The address disambiguates profilers:
    /// a guard from another [`Profiler`] instance leaves this profiler's
    /// scopes rooted rather than chaining onto foreign node indices.
    static CURRENT: Cell<(usize, usize)> = const { Cell::new((0, NONE)) };
}

/// One node of the scope tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

impl Tree {
    /// Finds or creates the child of `parent` (or a root when `parent`
    /// is [`NONE`]) named `name`, and returns its index.
    fn intern(&mut self, parent: usize, name: &'static str) -> usize {
        let siblings = if parent == NONE { &self.roots } else { &self.nodes[parent].children };
        if let Some(&idx) = siblings.iter().find(|&&c| self.nodes[c].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node { name, children: Vec::new(), calls: 0, total_ns: 0 });
        if parent == NONE {
            self.roots.push(idx);
        } else {
            self.nodes[parent].children.push(idx);
        }
        idx
    }
}

#[derive(Debug, Default)]
struct ProfCore {
    tree: Mutex<Tree>,
}

/// Cheap cloneable handle to a shared scope tree (see the [module
/// docs](self)).
#[derive(Debug, Clone)]
pub struct Profiler {
    enabled: bool,
    core: Arc<ProfCore>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::disabled()
    }
}

/// A captured "current scope" anchor for re-rooting worker-thread scopes
/// under the capturing thread's innermost open scope
/// ([`Profiler::ctx`] / [`Profiler::scope_in`]).
#[derive(Debug, Clone, Copy)]
pub struct ProfileCtx(usize);

impl ProfileCtx {
    /// Anchor at the tree root (worker scopes become top-level).
    pub const ROOT: ProfileCtx = ProfileCtx(NONE);
}

impl Profiler {
    /// A recording profiler with an empty scope tree.
    pub fn recording() -> Self {
        Profiler { enabled: true, core: Arc::new(ProfCore::default()) }
    }

    /// A profiler whose every operation is a branch-on-bool no-op: no
    /// clock reads, no locks, no allocation.
    pub fn disabled() -> Self {
        Profiler { enabled: false, core: Arc::new(ProfCore::default()) }
    }

    /// Whether scopes record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn core_addr(&self) -> usize {
        Arc::as_ptr(&self.core) as usize
    }

    /// Opens a scope named `name` nested under this thread's innermost
    /// open scope (a root scope if none is open). The returned guard
    /// charges elapsed nanoseconds and one call to the node on drop.
    #[must_use = "the guard's lifetime is the measured interval"]
    pub fn scope(&self, name: &'static str) -> ProfileGuard {
        if !self.enabled {
            return ProfileGuard { core: None, node: 0, saved: (0, 0), start: None };
        }
        let addr = self.core_addr();
        let saved = CURRENT.with(Cell::get);
        let parent = if saved.0 == addr { saved.1 } else { NONE };
        self.enter(addr, parent, name, saved)
    }

    /// Opens a scope nested under the captured anchor `ctx` instead of
    /// this thread's stack — the fan-out entry point for worker threads.
    #[must_use = "the guard's lifetime is the measured interval"]
    pub fn scope_in(&self, ctx: ProfileCtx, name: &'static str) -> ProfileGuard {
        if !self.enabled {
            return ProfileGuard { core: None, node: 0, saved: (0, 0), start: None };
        }
        let addr = self.core_addr();
        let saved = CURRENT.with(Cell::get);
        self.enter(addr, ctx.0, name, saved)
    }

    fn enter(
        &self,
        addr: usize,
        parent: usize,
        name: &'static str,
        saved: (usize, usize),
    ) -> ProfileGuard {
        let node = {
            let mut tree = self.core.tree.lock().expect("profiler tree poisoned");
            let node = tree.intern(parent, name);
            tree.nodes[node].calls += 1;
            node
        };
        CURRENT.with(|c| c.set((addr, node)));
        ProfileGuard { core: Some(self.core.clone()), node, saved, start: Some(Instant::now()) }
    }

    /// Captures this thread's innermost open scope as an anchor for
    /// [`scope_in`](Self::scope_in) on worker threads.
    pub fn ctx(&self) -> ProfileCtx {
        if !self.enabled {
            return ProfileCtx::ROOT;
        }
        let addr = self.core_addr();
        let (owner, node) = CURRENT.with(Cell::get);
        ProfileCtx(if owner == addr { node } else { NONE })
    }

    /// Discards all recorded nodes (handles stay valid).
    pub fn reset(&self) {
        if self.enabled {
            *self.core.tree.lock().expect("profiler tree poisoned") = Tree::default();
        }
    }

    /// A deterministic-ordered snapshot of the scope tree (siblings
    /// sorted by name, depth-first).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut frames = Vec::new();
        if self.enabled {
            let tree = self.core.tree.lock().expect("profiler tree poisoned");
            let mut roots = tree.roots.clone();
            roots.sort_by_key(|&r| tree.nodes[r].name);
            for r in roots {
                flatten(&tree, r, 0, "", &mut frames);
            }
        }
        ProfileSnapshot { frames }
    }

    /// Publishes per-scope-name summary gauges (`lla_profile_*`) onto
    /// `registry`: self seconds, total seconds, and call counts,
    /// aggregated over every node sharing a scope name. Scope names are
    /// sanitized into the metric name (`[a-zA-Z0-9_:]` kept, everything
    /// else becomes `_`).
    pub fn publish_summary(&self, registry: &MetricsRegistry) {
        let snap = self.snapshot();
        let mut by_name: Vec<(&str, u64, u64, u64)> = Vec::new();
        for f in &snap.frames {
            match by_name.iter_mut().find(|(n, ..)| *n == f.name) {
                Some(row) => {
                    row.1 += f.self_ns;
                    row.2 += f.total_ns;
                    row.3 += f.calls;
                }
                None => by_name.push((f.name, f.self_ns, f.total_ns, f.calls)),
            }
        }
        for (name, self_ns, total_ns, calls) in by_name {
            let base = sanitize_metric_name(name);
            registry
                .gauge(
                    &format!("lla_profile_self_seconds_{base}"),
                    "profiler: self wall-clock seconds attributed to this scope name",
                )
                .set(self_ns as f64 / 1e9);
            registry
                .gauge(
                    &format!("lla_profile_total_seconds_{base}"),
                    "profiler: total (inclusive) wall-clock seconds for this scope name",
                )
                .set(total_ns as f64 / 1e9);
            registry
                .gauge(
                    &format!("lla_profile_calls_{base}"),
                    "profiler: times scopes with this name were entered",
                )
                .set(calls as f64);
        }
    }
}

fn sanitize_metric_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

fn flatten(tree: &Tree, idx: usize, depth: usize, prefix: &str, out: &mut Vec<ProfileFrame>) {
    let node = &tree.nodes[idx];
    let path =
        if prefix.is_empty() { node.name.to_string() } else { format!("{prefix};{}", node.name) };
    let child_ns: u64 = node.children.iter().map(|&c| tree.nodes[c].total_ns).sum();
    out.push(ProfileFrame {
        name: node.name,
        path: path.clone(),
        depth,
        calls: node.calls,
        total_ns: node.total_ns,
        self_ns: node.total_ns.saturating_sub(child_ns),
    });
    let mut children = node.children.clone();
    children.sort_by_key(|&c| tree.nodes[c].name);
    for c in children {
        flatten(tree, c, depth + 1, &path, out);
    }
}

/// Guard for one open scope; dropping it closes the scope and charges
/// the elapsed interval (see [`Profiler::scope`]).
#[derive(Debug)]
pub struct ProfileGuard {
    core: Option<Arc<ProfCore>>,
    node: usize,
    saved: (usize, usize),
    start: Option<Instant>,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        let Some(core) = self.core.take() else { return };
        let ns = self.start.map_or(0, |s| s.elapsed().as_nanos() as u64);
        {
            let mut tree = core.tree.lock().expect("profiler tree poisoned");
            tree.nodes[self.node].total_ns += ns;
        }
        let saved = self.saved;
        CURRENT.with(|c| c.set(saved));
    }
}

/// One flattened scope-tree node in deterministic (name-sorted DFS)
/// order.
#[derive(Debug, Clone)]
pub struct ProfileFrame {
    /// Scope name (the last path segment).
    pub name: &'static str,
    /// `;`-joined path from the root scope (folded-stack convention).
    pub path: String,
    /// Nesting depth (0 = root scope).
    pub depth: usize,
    /// Times the scope was entered. Deterministic.
    pub calls: u64,
    /// Inclusive wall-clock nanoseconds. Non-deterministic.
    pub total_ns: u64,
    /// Exclusive nanoseconds (total minus children). Non-deterministic.
    pub self_ns: u64,
}

/// Deterministic-ordered flattened view of a [`Profiler`]'s tree, with
/// the exporters (folded stacks, top-N, JSON, Chrome trace events).
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Frames in name-sorted depth-first order.
    pub frames: Vec<ProfileFrame>,
}

impl ProfileSnapshot {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Folded-stack flamegraph text weighted by **self nanoseconds** —
    /// one `path;to;scope <self_ns>` line per node, ready for
    /// `flamegraph.pl` / speedscope / inferno. Non-deterministic values;
    /// deterministic line order.
    pub fn folded_ns(&self) -> String {
        let mut out = String::new();
        for f in &self.frames {
            out.push_str(&format!("{} {}\n", f.path, f.self_ns));
        }
        out
    }

    /// Folded-stack text weighted by **call counts** — the fully
    /// deterministic variant golden tests pin byte-for-byte.
    pub fn folded_calls(&self) -> String {
        let mut out = String::new();
        for f in &self.frames {
            out.push_str(&format!("{} {}\n", f.path, f.calls));
        }
        out
    }

    /// The `n` frames with the largest self time, descending (ties
    /// broken by path so the order stays deterministic).
    pub fn top_self(&self, n: usize) -> Vec<&ProfileFrame> {
        let mut sorted: Vec<&ProfileFrame> = self.frames.iter().collect();
        sorted.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        sorted.truncate(n);
        sorted
    }

    /// Total nanoseconds across root scopes (the denominator for
    /// attribution shares).
    pub fn root_total_ns(&self) -> u64 {
        self.frames.iter().filter(|f| f.depth == 0).map(|f| f.total_ns).sum()
    }

    /// Fraction of `path`'s inclusive time attributed to its children
    /// (1.0 − self/total); `None` when the path is absent or never
    /// accumulated time.
    pub fn attributed_fraction(&self, path: &str) -> Option<f64> {
        let f = self.frames.iter().find(|f| f.path == path)?;
        (f.total_ns > 0).then(|| 1.0 - f.self_ns as f64 / f.total_ns as f64)
    }

    /// JSON document: a flat array of frame objects in deterministic
    /// order (`path` encodes the hierarchy).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"profile\":[\n");
        for (i, f) in self.frames.iter().enumerate() {
            let comma = if i + 1 < self.frames.len() { "," } else { "" };
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"depth\":{},\"calls\":{},\"total_ns\":{},\"self_ns\":{}}}{comma}\n",
                crate::events::json_escape(&f.path),
                f.depth,
                f.calls,
                f.total_ns,
                f.self_ns
            ));
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(profiler: &Profiler) {
        let _outer = profiler.scope("outer");
        for _ in 0..3 {
            let _inner = profiler.scope("inner");
        }
        let _other = profiler.scope("tail");
    }

    #[test]
    fn hierarchy_and_counts() {
        let p = Profiler::recording();
        spin(&p);
        spin(&p);
        let snap = p.snapshot();
        let paths: Vec<(&str, u64)> =
            snap.frames.iter().map(|f| (f.path.as_str(), f.calls)).collect();
        assert_eq!(
            paths,
            vec![("outer", 2), ("outer;inner", 6), ("outer;tail", 2)],
            "calls tree must be exact and name-sorted"
        );
        assert_eq!(snap.folded_calls(), "outer 2\nouter;inner 6\nouter;tail 2\n");
    }

    #[test]
    fn self_time_excludes_children() {
        let p = Profiler::recording();
        {
            let _outer = p.scope("outer");
            let _inner = p.scope("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = p.snapshot();
        let outer = snap.frames.iter().find(|f| f.path == "outer").unwrap();
        let inner = snap.frames.iter().find(|f| f.path == "outer;inner").unwrap();
        assert!(inner.total_ns >= 1_000_000, "sleep must be charged to inner");
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }

    #[test]
    fn disabled_records_nothing() {
        let p = Profiler::disabled();
        spin(&p);
        assert!(p.snapshot().is_empty());
        assert_eq!(p.snapshot().folded_calls(), "");
        assert!(!p.is_enabled());
    }

    #[test]
    fn sibling_profilers_do_not_chain() {
        let a = Profiler::recording();
        let b = Profiler::recording();
        let _ga = a.scope("a_scope");
        {
            // b's scope opens while a's is current on this thread; it
            // must root in b's tree, not nest under a's node index.
            let _gb = b.scope("b_scope");
        }
        drop(_ga);
        assert_eq!(a.snapshot().folded_calls(), "a_scope 1\n");
        assert_eq!(b.snapshot().folded_calls(), "b_scope 1\n");
    }

    #[test]
    fn worker_threads_accumulate_into_shared_tree() {
        let p = Profiler::recording();
        let _round = p.scope("round");
        let ctx = p.ctx();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    let _g = p.scope_in(ctx, "worker");
                    let _n = p.scope("nested");
                });
            }
        });
        drop(_round);
        let snap = p.snapshot();
        let worker = snap.frames.iter().find(|f| f.path == "round;worker").unwrap();
        let nested = snap.frames.iter().find(|f| f.path == "round;worker;nested").unwrap();
        assert_eq!(worker.calls, 4);
        assert_eq!(nested.calls, 4);
    }

    #[test]
    fn reset_clears_tree() {
        let p = Profiler::recording();
        spin(&p);
        p.reset();
        assert!(p.snapshot().is_empty());
        spin(&p);
        assert_eq!(p.snapshot().frames[0].calls, 1);
    }

    #[test]
    fn top_self_orders_by_self_time() {
        let p = Profiler::recording();
        {
            let _a = p.scope("slow");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _b = p.scope("fast");
        }
        let snap = p.snapshot();
        let top = snap.top_self(1);
        assert_eq!(top[0].path, "slow");
    }

    #[test]
    fn publish_summary_registers_gauges() {
        let p = Profiler::recording();
        spin(&p);
        let registry = MetricsRegistry::new();
        p.publish_summary(&registry);
        let text = registry.prometheus_text();
        assert!(text.contains("lla_profile_self_seconds_outer"));
        assert!(text.contains("lla_profile_calls_inner 3"));
        assert!(text.contains("lla_profile_total_seconds_tail"));
    }

    #[test]
    fn json_export_is_wellformed_and_ordered() {
        let p = Profiler::recording();
        spin(&p);
        let json = p.snapshot().to_json();
        assert!(json.starts_with("{\"profile\":[\n"));
        assert!(json.contains("\"path\":\"outer;inner\",\"depth\":1,\"calls\":3"));
        assert!(json.ends_with("]}\n"));
    }
}
