//! Health exposition: the "is it converged and feasible right now?" answer.
//!
//! [`HealthSnapshot`] is plain data — constructed by whoever owns an
//! optimizer or a distributed deployment (`lla_core::Optimizer::
//! health_snapshot`, the CLI, `lla-bench`) and rendered here as human
//! text or JSON. Keeping it data-only lets this crate stay below
//! `lla-core` in the dependency graph.

use crate::fmt_f64;
use std::fmt;
use std::fmt::Write as _;

/// Per-resource health: dual price, usage, and availability.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceHealth {
    /// Resource name (as in the problem spec).
    pub name: String,
    /// Current dual price `μ_r`.
    pub price: f64,
    /// Current usage `Σ c/l` over hosted subtasks.
    pub usage: f64,
    /// Availability bound `B_r`.
    pub availability: f64,
}

impl ResourceHealth {
    /// `usage / availability` — >1 means the resource is over-subscribed.
    pub fn utilization_factor(&self) -> f64 {
        if self.availability > 0.0 {
            self.usage / self.availability
        } else {
            f64::INFINITY
        }
    }
}

/// A point-in-time health summary of an LLA deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Has the optimizer met its convergence criterion?
    pub converged: bool,
    /// Are all resource and path constraints within tolerance?
    pub feasible: bool,
    /// Iterations (or rounds) completed so far.
    pub iteration: u64,
    /// Current aggregate utility.
    pub utility: f64,
    /// KKT residual: worst stationarity violation.
    pub max_stationarity_residual: f64,
    /// KKT residual: worst resource-capacity violation.
    pub max_resource_violation: f64,
    /// KKT residual: worst path-deadline violation.
    pub max_path_violation: f64,
    /// KKT residual: worst complementary-slackness violation.
    pub max_complementary_slackness: f64,
    /// Worst constraint-violation *factor* across resources
    /// (`usage/B_r`) and paths (`latency/C_i`); ≤1 means feasible.
    pub worst_violation_factor: f64,
    /// Per-resource price + usage.
    pub resources: Vec<ResourceHealth>,
    /// Tasks shed by the overload governor so far.
    pub shed_count: u64,
    /// Membership changes (joins/leaves/evictions) applied so far.
    pub membership_changes: u64,
    /// Failovers (crash → checkpoint restore) observed so far.
    pub failovers: u64,
}

/// Largest [`HealthSnapshot::worst_violation_factor`] a snapshot may
/// report and still count as [`healthy`](HealthSnapshot::healthy).
///
/// A factor of 1 means a constraint is exactly tight; the extra 1e-3
/// mirrors the optimizer's default feasibility tolerance
/// (`OptimizerConfig::feasibility_tol`), so "healthy" and "feasible"
/// agree at the boundary instead of flapping on float noise.
pub const HEALTHY_MAX_VIOLATION_FACTOR: f64 = 1.001;

impl HealthSnapshot {
    /// Healthy means converged, feasible, *and* the reported worst
    /// violation factor within [`HEALTHY_MAX_VIOLATION_FACTOR`] — the
    /// factor guard catches a snapshot whose feasibility bit was computed
    /// against different (or stale) tolerances upstream.
    pub fn healthy(&self) -> bool {
        self.converged
            && self.feasible
            && self.worst_violation_factor <= HEALTHY_MAX_VIOLATION_FACTOR
    }

    /// One JSON object (stable field order).
    pub fn to_json(&self) -> String {
        fn jf(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_owned()
            }
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"converged\": {},", self.converged);
        let _ = writeln!(out, "  \"feasible\": {},", self.feasible);
        let _ = writeln!(out, "  \"healthy\": {},", self.healthy());
        let _ = writeln!(out, "  \"iteration\": {},", self.iteration);
        let _ = writeln!(out, "  \"utility\": {},", jf(self.utility));
        let _ = writeln!(
            out,
            "  \"kkt\": {{\"stationarity\": {}, \"resource_violation\": {}, \
             \"path_violation\": {}, \"complementary_slackness\": {}}},",
            jf(self.max_stationarity_residual),
            jf(self.max_resource_violation),
            jf(self.max_path_violation),
            jf(self.max_complementary_slackness)
        );
        let _ = writeln!(out, "  \"worst_violation_factor\": {},", jf(self.worst_violation_factor));
        let _ = writeln!(out, "  \"resources\": [");
        for (i, r) in self.resources.iter().enumerate() {
            let comma = if i + 1 < self.resources.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"price\": {}, \"usage\": {}, \
                 \"availability\": {}}}{comma}",
                r.name,
                jf(r.price),
                jf(r.usage),
                jf(r.availability)
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"shed_count\": {},", self.shed_count);
        let _ = writeln!(out, "  \"membership_changes\": {},", self.membership_changes);
        let _ = writeln!(out, "  \"failovers\": {}", self.failovers);
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for HealthSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "health: {} (converged={}, feasible={}) at iteration {}",
            if self.healthy() { "OK" } else { "DEGRADED" },
            self.converged,
            self.feasible,
            self.iteration
        )?;
        writeln!(f, "utility: {}", fmt_f64(self.utility))?;
        writeln!(
            f,
            "kkt residuals: stationarity={:.3e} resource={:.3e} path={:.3e} \
             compl-slack={:.3e}",
            self.max_stationarity_residual,
            self.max_resource_violation,
            self.max_path_violation,
            self.max_complementary_slackness
        )?;
        writeln!(f, "worst violation factor: {:.4}", self.worst_violation_factor)?;
        for r in &self.resources {
            writeln!(
                f,
                "  resource {:<12} price={:>10.4} usage={:>8.4}/{:<8.4} ({:.1}%)",
                r.name,
                r.price,
                r.usage,
                r.availability,
                100.0 * r.utilization_factor()
            )?;
        }
        write!(
            f,
            "counts: shed={} membership={} failovers={}",
            self.shed_count, self.membership_changes, self.failovers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> HealthSnapshot {
        HealthSnapshot {
            converged: true,
            feasible: true,
            iteration: 42,
            utility: 3.5,
            max_stationarity_residual: 1e-7,
            max_resource_violation: 0.0,
            max_path_violation: 0.0,
            max_complementary_slackness: 2e-8,
            worst_violation_factor: 0.97,
            resources: vec![ResourceHealth {
                name: "cpu0".into(),
                price: 1.25,
                usage: 0.9,
                availability: 1.0,
            }],
            shed_count: 1,
            membership_changes: 3,
            failovers: 0,
        }
    }

    #[test]
    fn healthy_requires_converged_and_feasible() {
        let mut s = snapshot();
        assert!(s.healthy());
        s.feasible = false;
        assert!(!s.healthy());
        s.feasible = true;
        s.converged = false;
        assert!(!s.healthy());
    }

    #[test]
    fn healthy_violation_factor_boundary() {
        let mut s = snapshot();
        // Exactly at the documented threshold: still healthy (inclusive).
        s.worst_violation_factor = HEALTHY_MAX_VIOLATION_FACTOR;
        assert!(s.healthy());
        // The smallest representable step above it: degraded, even with
        // the converged/feasible bits set.
        s.worst_violation_factor = HEALTHY_MAX_VIOLATION_FACTOR.next_up();
        assert!(!s.healthy());
        // Exactly tight constraints (factor 1.0) are healthy.
        s.worst_violation_factor = 1.0;
        assert!(s.healthy());
        // NaN must never pass a health check.
        s.worst_violation_factor = f64::NAN;
        assert!(!s.healthy());
    }

    #[test]
    fn json_contains_all_sections() {
        let j = snapshot().to_json();
        for key in ["\"converged\": true", "\"kkt\"", "\"resources\"", "\"shed_count\": 1", "cpu0"]
        {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn utilization_factor_handles_zero_availability() {
        let r = ResourceHealth { name: "x".into(), price: 0.0, usage: 1.0, availability: 0.0 };
        assert_eq!(r.utilization_factor(), f64::INFINITY);
    }
}
