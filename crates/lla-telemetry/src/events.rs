//! Structured runtime events and the JSONL event log.
//!
//! An [`Event`] is a timestamp, a static kind, and an ordered list of
//! typed fields. Inside `lla-dist` the timestamp is the *virtual* clock,
//! so a chaos soak with a fixed seed produces a byte-identical JSONL log
//! on every run — the event stream doubles as a correctness oracle (see
//! the golden-file test in `tests/telemetry.rs`).

use crate::fmt_f64;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, slots, epochs).
    U64(u64),
    /// Float (times, utilities, prices).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free text (addresses, notes).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{}", fmt_f64(*v)),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::U64(v) => format!("{v}"),
        Value::F64(v) if v.is_finite() => format!("{v}"),
        Value::F64(_) => "null".to_owned(),
        Value::Bool(v) => format!("{v}"),
        Value::Str(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// One structured event: a timestamp (virtual or wall clock — the emitter
/// decides, and `lla-dist` always uses virtual time), a static kind, and
/// ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp in the emitter's clock domain.
    pub time: f64,
    /// Event kind, e.g. `"crash"`, `"task_join"`, `"shed"`.
    pub kind: &'static str,
    /// Ordered key/value fields; order is preserved in exposition.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(time: f64, kind: &'static str) -> Self {
        Event { time, kind, fields: Vec::new() }
    }

    /// Append a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One JSON object, e.g.
    /// `{"t":125.5,"kind":"crash","addr":"controller:0"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"t\":");
        out.push_str(&json_value(&Value::F64(self.time)));
        out.push_str(",\"kind\":\"");
        out.push_str(&json_escape(self.kind));
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            out.push_str(&json_escape(k));
            out.push_str("\":");
            out.push_str(&json_value(v));
        }
        out.push('}');
        out
    }

    /// Human-oriented single line, e.g.
    /// `[    125.500] crash addr=controller:0`.
    pub fn render_line(&self) -> String {
        let mut out = format!("[{:>11.3}] {}", self.time, self.kind);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

#[derive(Debug)]
struct EventLogCore {
    events: Mutex<Vec<Event>>,
}

/// A shared, append-only event log. Cloning shares the buffer. A disabled
/// log drops every event at a branch; an echoing log additionally renders
/// each event to stderr as it arrives (used by the `lla-bench` bins to
/// keep human progress off stdout).
#[derive(Debug, Clone)]
pub struct EventLog {
    enabled: bool,
    echo_stderr: bool,
    core: Arc<EventLogCore>,
}

impl EventLog {
    /// A log that records events.
    pub fn recording() -> Self {
        EventLog {
            enabled: true,
            echo_stderr: false,
            core: Arc::new(EventLogCore { events: Mutex::new(Vec::new()) }),
        }
    }

    /// A log that drops everything.
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            echo_stderr: false,
            core: Arc::new(EventLogCore { events: Mutex::new(Vec::new()) }),
        }
    }

    /// Also render each recorded event to stderr as it arrives.
    #[must_use]
    pub fn with_stderr_echo(mut self) -> Self {
        self.echo_stderr = true;
        self
    }

    /// Whether this log records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op when disabled).
    pub fn emit(&self, event: Event) {
        if !self.enabled {
            return;
        }
        if self.echo_stderr {
            eprintln!("{}", event.render_line());
        }
        self.core.events.lock().expect("event log poisoned").push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.core.events.lock().expect("event log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of recorded events of the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.core
            .events
            .lock()
            .expect("event log poisoned")
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }

    /// A clone of the recorded events, in emission order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.core.events.lock().expect("event log poisoned").clone()
    }

    /// The whole log as JSONL: one `Event::to_json` object per line. For
    /// virtual-clock events this rendering is byte-deterministic given
    /// the same seed.
    pub fn to_jsonl(&self) -> String {
        let events = self.core.events.lock().expect("event log poisoned");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_preserves_field_order_and_escapes() {
        let e = Event::new(12.5, "note")
            .with("slot", 3usize)
            .with("text", "a \"quoted\"\nline")
            .with("ok", true)
            .with("gap", 0.125);
        assert_eq!(
            e.to_json(),
            "{\"t\":12.5,\"kind\":\"note\",\"slot\":3,\
             \"text\":\"a \\\"quoted\\\"\\nline\",\"ok\":true,\"gap\":0.125}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null_json() {
        let e = Event::new(0.0, "x").with("v", f64::INFINITY);
        assert!(e.to_json().contains("\"v\":null"));
    }

    #[test]
    fn log_records_in_order_and_disabled_log_drops() {
        let log = EventLog::recording();
        log.emit(Event::new(1.0, "a"));
        log.emit(Event::new(2.0, "b").with("n", 7u64));
        assert_eq!(log.len(), 2);
        assert_eq!(log.count_kind("a"), 1);
        assert_eq!(log.to_jsonl(), "{\"t\":1,\"kind\":\"a\"}\n{\"t\":2,\"kind\":\"b\",\"n\":7}\n");

        let off = EventLog::disabled();
        off.emit(Event::new(1.0, "a"));
        assert!(off.is_empty());
        assert_eq!(off.to_jsonl(), "");
    }

    #[test]
    fn clones_share_the_buffer() {
        let log = EventLog::recording();
        let other = log.clone();
        other.emit(Event::new(1.0, "shared"));
        assert_eq!(log.len(), 1);
    }
}
