//! Structured runtime events and the JSONL event log.
//!
//! An [`Event`] is a timestamp, a static kind, and an ordered list of
//! typed fields. Inside `lla-dist` the timestamp is the *virtual* clock,
//! so a chaos soak with a fixed seed produces a byte-identical JSONL log
//! on every run — the event stream doubles as a correctness oracle (see
//! the golden-file test in `tests/telemetry.rs`).

use crate::fmt_f64;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, slots, epochs).
    U64(u64),
    /// Float (times, utilities, prices).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free text (addresses, notes).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{}", fmt_f64(*v)),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_value(v: &Value) -> String {
    match v {
        Value::U64(v) => format!("{v}"),
        Value::F64(v) if v.is_finite() => format!("{v}"),
        Value::F64(_) => "null".to_owned(),
        Value::Bool(v) => format!("{v}"),
        Value::Str(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// One structured event: a timestamp (virtual or wall clock — the emitter
/// decides, and `lla-dist` always uses virtual time), a static kind, and
/// ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp in the emitter's clock domain.
    pub time: f64,
    /// Event kind, e.g. `"crash"`, `"task_join"`, `"shed"`.
    pub kind: &'static str,
    /// Ordered key/value fields; order is preserved in exposition.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(time: f64, kind: &'static str) -> Self {
        Event { time, kind, fields: Vec::new() }
    }

    /// Append a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One JSON object, e.g.
    /// `{"t":125.5,"kind":"crash","addr":"controller:0"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"t\":");
        out.push_str(&json_value(&Value::F64(self.time)));
        out.push_str(",\"kind\":\"");
        out.push_str(&json_escape(self.kind));
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            out.push_str(&json_escape(k));
            out.push_str("\":");
            out.push_str(&json_value(v));
        }
        out.push('}');
        out
    }

    /// Human-oriented single line, e.g.
    /// `[    125.500] crash addr=controller:0`.
    pub fn render_line(&self) -> String {
        let mut out = format!("[{:>11.3}] {}", self.time, self.kind);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

#[derive(Debug)]
struct LogState {
    events: Vec<Event>,
    /// Maximum retained events (`None` = unbounded append).
    capacity: Option<usize>,
    /// Accept one event in every `stride` emissions.
    stride: u64,
    /// Total events offered via `emit` (kept or not).
    seen: u64,
}

#[derive(Debug)]
struct EventLogCore {
    state: Mutex<LogState>,
}

/// A shared, append-only event log. Cloning shares the buffer. A disabled
/// log drops every event at a branch; an echoing log additionally renders
/// each event to stderr as it arrives (used by the `lla-bench` bins to
/// keep human progress off stdout).
///
/// A [`bounded`](Self::bounded) log keeps at most `capacity` events by
/// the same stride-doubling downsampling as `lla-core`'s bounded
/// `Trace`: when the buffer fills, every other event is dropped and the
/// sampling stride doubles, so the kept events always span the whole run
/// at uniform (power-of-two) spacing, oldest first.
#[derive(Debug, Clone)]
pub struct EventLog {
    enabled: bool,
    echo_stderr: bool,
    core: Arc<EventLogCore>,
}

impl EventLog {
    fn with_capacity(enabled: bool, capacity: Option<usize>) -> Self {
        EventLog {
            enabled,
            echo_stderr: false,
            core: Arc::new(EventLogCore {
                state: Mutex::new(LogState {
                    events: Vec::new(),
                    capacity: capacity.map(|c| c.max(2)),
                    stride: 1,
                    seen: 0,
                }),
            }),
        }
    }

    /// A log that records events without bound.
    pub fn recording() -> Self {
        EventLog::with_capacity(true, None)
    }

    /// A log keeping at most `capacity` events (clamped to ≥ 2) by
    /// stride-doubling downsampling.
    pub fn bounded(capacity: usize) -> Self {
        EventLog::with_capacity(true, Some(capacity))
    }

    /// A log that drops everything.
    pub fn disabled() -> Self {
        EventLog::with_capacity(false, None)
    }

    /// Also render each recorded event to stderr as it arrives.
    #[must_use]
    pub fn with_stderr_echo(mut self) -> Self {
        self.echo_stderr = true;
        self
    }

    /// Whether this log records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The capacity this log was created with (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.core.state.lock().expect("event log poisoned").capacity
    }

    /// The current downsampling stride: one in every `stride` emitted
    /// events is retained (always 1 for an unbounded log).
    pub fn stride(&self) -> u64 {
        self.core.state.lock().expect("event log poisoned").stride
    }

    /// Total events offered to [`emit`](Self::emit), including ones the
    /// downsampler dropped (0 for a disabled log).
    pub fn seen(&self) -> u64 {
        self.core.state.lock().expect("event log poisoned").seen
    }

    /// Record one event (no-op when disabled). Bounded logs keep it only
    /// on the current stride, and compact (drop every other event,
    /// double the stride) when full.
    pub fn emit(&self, event: Event) {
        if !self.enabled {
            return;
        }
        if self.echo_stderr {
            eprintln!("{}", event.render_line());
        }
        let mut state = self.core.state.lock().expect("event log poisoned");
        let keep = state.seen.is_multiple_of(state.stride);
        state.seen += 1;
        if !keep {
            return;
        }
        state.events.push(event);
        if let Some(cap) = state.capacity {
            if state.events.len() >= cap {
                // Keep indices 0, 2, 4, … — the survivors are exactly
                // the events aligned to the doubled stride.
                let mut i = 0;
                state.events.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                state.stride *= 2;
            }
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.core.state.lock().expect("event log poisoned").events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of recorded events of the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.core
            .state
            .lock()
            .expect("event log poisoned")
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }

    /// A clone of the recorded events, in emission order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.core.state.lock().expect("event log poisoned").events.clone()
    }

    /// The whole log as JSONL: one `Event::to_json` object per line. For
    /// virtual-clock events this rendering is byte-deterministic given
    /// the same seed.
    pub fn to_jsonl(&self) -> String {
        let state = self.core.state.lock().expect("event log poisoned");
        let mut out = String::new();
        for e in state.events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_preserves_field_order_and_escapes() {
        let e = Event::new(12.5, "note")
            .with("slot", 3usize)
            .with("text", "a \"quoted\"\nline")
            .with("ok", true)
            .with("gap", 0.125);
        assert_eq!(
            e.to_json(),
            "{\"t\":12.5,\"kind\":\"note\",\"slot\":3,\
             \"text\":\"a \\\"quoted\\\"\\nline\",\"ok\":true,\"gap\":0.125}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null_json() {
        let e = Event::new(0.0, "x").with("v", f64::INFINITY);
        assert!(e.to_json().contains("\"v\":null"));
    }

    #[test]
    fn log_records_in_order_and_disabled_log_drops() {
        let log = EventLog::recording();
        log.emit(Event::new(1.0, "a"));
        log.emit(Event::new(2.0, "b").with("n", 7u64));
        assert_eq!(log.len(), 2);
        assert_eq!(log.count_kind("a"), 1);
        assert_eq!(log.to_jsonl(), "{\"t\":1,\"kind\":\"a\"}\n{\"t\":2,\"kind\":\"b\",\"n\":7}\n");

        let off = EventLog::disabled();
        off.emit(Event::new(1.0, "a"));
        assert!(off.is_empty());
        assert_eq!(off.to_jsonl(), "");
    }

    #[test]
    fn clones_share_the_buffer() {
        let log = EventLog::recording();
        let other = log.clone();
        other.emit(Event::new(1.0, "shared"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn bounded_log_wraparound_boundary_compacts_and_doubles_stride() {
        let log = EventLog::bounded(8);
        assert_eq!(log.capacity(), Some(8));
        // One below capacity: nothing compacted yet.
        for i in 0..7u64 {
            log.emit(Event::new(i as f64, "e").with("i", i));
        }
        assert_eq!(log.len(), 7);
        assert_eq!(log.stride(), 1);
        // The 8th emission is the wraparound boundary: the buffer fills,
        // every other event is dropped, and the stride doubles.
        log.emit(Event::new(7.0, "e").with("i", 7u64));
        assert_eq!(log.len(), 4, "compaction halves the buffer");
        assert_eq!(log.stride(), 2);
        assert_eq!(log.seen(), 8);
        let kept: Vec<u64> = log
            .snapshot()
            .iter()
            .map(|e| match e.field("i") {
                Some(Value::U64(v)) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![0, 2, 4, 6], "survivors align to the doubled stride");
    }

    #[test]
    fn bounded_log_keeps_oldest_first_order_across_many_wraps() {
        let log = EventLog::bounded(16);
        for i in 0..1000u64 {
            log.emit(Event::new(i as f64, "e").with("i", i));
            assert!(log.len() <= 16, "len {} exceeded capacity at emit {i}", log.len());
        }
        assert_eq!(log.seen(), 1000);
        assert!(log.stride() >= 64, "stride {} too small", log.stride());
        let kept: Vec<u64> = log
            .snapshot()
            .iter()
            .map(|e| match e.field("i") {
                Some(Value::U64(v)) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(kept[0], 0, "the first event always survives");
        assert!(*kept.last().unwrap() >= 1000 - 2 * log.stride());
        for w in kept.windows(2) {
            assert_eq!(w[1] - w[0], log.stride(), "non-uniform spacing: {kept:?}");
        }
    }

    #[test]
    fn bounded_capacity_is_clamped_to_two() {
        let log = EventLog::bounded(0);
        assert_eq!(log.capacity(), Some(2));
        for i in 0..10u64 {
            log.emit(Event::new(i as f64, "e"));
        }
        assert!(log.len() <= 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn unbounded_log_never_strides() {
        let log = EventLog::recording();
        for i in 0..100u64 {
            log.emit(Event::new(i as f64, "e"));
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.stride(), 1);
        assert_eq!(log.seen(), 100);
        assert_eq!(log.capacity(), None);
    }

    #[test]
    fn render_line_covers_every_value_variant() {
        let e = Event::new(125.5, "crash")
            .with("count", 3u64)
            .with("gap", 0.125)
            .with("frozen", true)
            .with("addr", "controller[0]");
        assert_eq!(
            e.render_line(),
            "[    125.500] crash count=3 gap=0.125 frozen=true addr=controller[0]"
        );
        // Non-finite floats render with the Prometheus spellings.
        let inf = Event::new(0.0, "x").with("v", f64::INFINITY).with("w", f64::NEG_INFINITY);
        assert_eq!(inf.render_line(), "[      0.000] x v=+Inf w=-Inf");
    }
}
