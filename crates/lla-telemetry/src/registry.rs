//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are registered once by
//! name and then cloned freely; updates touch only atomics, never the
//! registry lock, so agents and the optimizer hot path can increment
//! without contention. A handle obtained from a disabled registry keeps
//! the same API but every update is a branch-on-bool no-op.

use crate::fmt_f64;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: bool,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing no-op counter (not attached to any registry).
    pub fn disabled() -> Self {
        Counter { enabled: false, cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (always 0 for a disabled counter).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: bool,
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A free-standing no-op gauge.
    pub fn disabled() -> Self {
        Gauge { enabled: false, bits: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        if self.enabled {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (always 0.0 for a disabled gauge).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds, strictly increasing; an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket (non-cumulative).
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, accumulated as bits via compare-exchange.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram. Bucket bounds are set at registration and
/// never change; observation is two atomic ops plus a compare-exchange
/// loop for the running sum.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: bool,
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn with_bounds(enabled: bool, bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            enabled,
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// A free-standing no-op histogram with no finite buckets.
    pub fn disabled() -> Self {
        Histogram::with_bounds(false, &[])
    }

    /// Record one observation. Values equal to a bound land in that
    /// bound's bucket (Prometheus `le` semantics); values above every
    /// bound land in the implicit `+Inf` bucket.
    pub fn observe(&self, v: f64) {
        if !self.enabled {
            return;
        }
        let idx = self.core.bounds.iter().position(|&b| v <= b).unwrap_or(self.core.bounds.len());
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.core.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the implicit
    /// `+Inf` overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Debug, Clone)]
enum MetricKind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricKind {
    fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter(_) => "counter",
            MetricKind::Gauge(_) => "gauge",
            MetricKind::Histogram(_) => "histogram",
        }
    }
}

/// One metric *family*: a `# HELP`/`# TYPE` header plus one series per
/// label set. The unlabeled series uses the empty label key; all series
/// in a family share one metric kind.
#[derive(Debug, Clone)]
struct Metric {
    help: &'static str,
    series: BTreeMap<String, MetricKind>,
}

/// Renders a label set as its canonical exposition key: pairs sorted by
/// label name, values escaped, joined as `a="x",b="y"`. The empty slice
/// renders as the empty string (the unlabeled series).
///
/// # Panics
///
/// Panics on an invalid label name (must match `[a-zA-Z_][a-zA-Z0-9_]*`),
/// a duplicate label name, or the reserved histogram label `le` — label
/// names come from code, so these are programming errors.
fn render_label_key(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    for (i, (name, _)) in pairs.iter().enumerate() {
        let mut chars = name.chars();
        let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
        let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
        assert!(head_ok && tail_ok, "invalid label name {name:?}");
        assert!(*name != "le", "label name \"le\" is reserved for histogram buckets");
        assert!(i == 0 || pairs[i - 1].0 != *name, "duplicate label name {name:?}");
    }
    let mut out = String::new();
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}=\"{}\"", escape_label_value(value));
    }
    out
}

/// Joins a series' label key with an extra pair (used to splice `le` into
/// histogram bucket lines).
fn join_label_keys(key: &str, extra: &str) -> String {
    if key.is_empty() {
        extra.to_owned()
    } else {
        format!("{key},{extra}")
    }
}

/// The registry: a name → metric table behind a mutex that is touched
/// only at registration and exposition time, never on update.
///
/// Cloning shares the underlying table; `MetricsRegistry::disabled()`
/// hands out no-op handles and renders an empty exposition.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    table: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry { enabled: true, table: Arc::new(Mutex::new(BTreeMap::new())) }
    }

    /// A registry whose handles are all no-ops.
    pub fn disabled() -> Self {
        MetricsRegistry { enabled: false, table: Arc::new(Mutex::new(BTreeMap::new())) }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or looks up) a series in `name`'s family, creating the
    /// family on first registration. All series in a family must share
    /// one metric kind.
    fn series(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricKind,
    ) -> MetricKind {
        let key = render_label_key(labels);
        let mut table = self.table.lock().expect("metrics registry poisoned");
        let family = table
            .entry(name.to_owned())
            .or_insert_with(|| Metric { help, series: BTreeMap::new() });
        if let Some(existing) = family.series.values().next() {
            let existing = existing.type_name();
            let entry = family.series.entry(key).or_insert_with(make);
            assert!(
                entry.type_name() == existing,
                "metric {name:?} already registered with a different kind"
            );
            entry.clone()
        } else {
            family.series.entry(key).or_insert_with(make).clone()
        }
    }

    /// Register (or look up) a counter. Re-registering the same name
    /// returns a handle to the same cell; re-registering under a
    /// different metric kind panics.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labeled counter series. The same
    /// `(name, labels)` pair shares one cell; label order is irrelevant
    /// (pairs are canonicalized by label name).
    pub fn counter_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        if !self.enabled {
            return Counter::disabled();
        }
        match self.series(name, help, labels, || {
            MetricKind::Counter(Counter { enabled: true, cell: Arc::new(AtomicU64::new(0)) })
        }) {
            MetricKind::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        if !self.enabled {
            return Gauge::disabled();
        }
        match self.series(name, help, labels, || {
            MetricKind::Gauge(Gauge {
                enabled: true,
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
        }) {
            MetricKind::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or look up) a histogram with the given finite, strictly
    /// increasing bucket bounds. A later registration under the same name
    /// returns the original handle (its bounds win).
    pub fn histogram(&self, name: &str, help: &'static str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Register (or look up) a labeled histogram series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        if !self.enabled {
            return Histogram::disabled();
        }
        match self.series(name, help, labels, || {
            MetricKind::Histogram(Histogram::with_bounds(true, bounds))
        }) {
            MetricKind::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Prometheus text exposition (version 0.0.4). Metric families are
    /// sorted by name, so the output is deterministic for a given set of
    /// values. `# HELP` text and label values are escaped per the
    /// text-format spec ([`escape_help`], [`escape_label_value`]).
    pub fn prometheus_text(&self) -> String {
        let table = self.table.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, metric) in table.iter() {
            let Some(first) = metric.series.values().next() else { continue };
            let _ = writeln!(out, "# HELP {name} {}", escape_help(metric.help));
            let _ = writeln!(out, "# TYPE {name} {}", first.type_name());
            for (key, series) in metric.series.iter() {
                // The unlabeled series renders bare; labeled series carry
                // their canonical `{a="x",b="y"}` key.
                let braced = if key.is_empty() { String::new() } else { format!("{{{key}}}") };
                match series {
                    MetricKind::Counter(c) => {
                        let _ = writeln!(out, "{name}{braced} {}", c.get());
                    }
                    MetricKind::Gauge(g) => {
                        let _ = writeln!(out, "{name}{braced} {}", fmt_f64(g.get()));
                    }
                    MetricKind::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (bound, c) in h.bounds().iter().zip(&counts) {
                            cumulative += c;
                            let le = format!("le=\"{}\"", escape_label_value(&fmt_f64(*bound)));
                            let _ = writeln!(
                                out,
                                "{name}_bucket{{{}}} {cumulative}",
                                join_label_keys(key, &le)
                            );
                        }
                        cumulative += counts.last().copied().unwrap_or(0);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{{}}} {cumulative}",
                            join_label_keys(key, "le=\"+Inf\"")
                        );
                        let _ = writeln!(out, "{name}_sum{braced} {}", fmt_f64(h.sum()));
                        let _ = writeln!(out, "{name}_count{braced} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// Escape `# HELP` text per the Prometheus text-format spec (version
/// 0.0.4): backslash → `\\`, line feed → `\n`. Help text lives to the
/// end of its comment line, so these are the only two escapes defined.
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a label value per the Prometheus text-format spec: backslash →
/// `\\`, double quote → `\"`, line feed → `\n`. The built-in `le` values
/// never need escaping, but exposition applies this unconditionally so
/// any future label stays spec-conformant.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_disabled_counter_does_not() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("lla_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second registration under the same name shares the cell.
        let c2 = reg.counter("lla_test_total", "test counter");
        c2.inc();
        assert_eq!(c.get(), 6);

        let off = MetricsRegistry::disabled().counter("lla_test_total", "x");
        off.inc();
        assert_eq!(off.get(), 0);
    }

    #[test]
    fn gauge_stores_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("lla_test_gauge", "test gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        let off = MetricsRegistry::disabled().gauge("x", "x");
        off.set(9.0);
        assert_eq!(off.get(), 0.0);
    }

    #[test]
    fn histogram_bucket_boundaries_follow_le_semantics() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lla_test_seconds", "test histogram", &[0.1, 1.0, 10.0]);
        // Exactly on a bound → that bucket (le is inclusive).
        h.observe(0.1);
        // Strictly inside a bucket.
        h.observe(0.5);
        // Upper finite bound.
        h.observe(10.0);
        // Above every bound → overflow bucket.
        h.observe(11.0);
        // Below the first bound.
        h.observe(0.0);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 21.6).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_exposes_zero_counts() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lla_empty_seconds", "empty histogram", &[1.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
        let text = reg.prometheus_text();
        assert!(text.contains("lla_empty_seconds_bucket{le=\"1\"} 0"));
        assert!(text.contains("lla_empty_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("lla_empty_seconds_count 0"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("lla_bad", "bad", &[1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("lla_same_name", "a");
        let _ = reg.gauge("lla_same_name", "b");
    }

    #[test]
    fn prometheus_text_is_sorted_and_cumulative() {
        let reg = MetricsRegistry::new();
        reg.counter("lla_b_total", "second").add(2);
        reg.gauge("lla_a_gauge", "first").set(0.5);
        let h = reg.histogram("lla_c_seconds", "third", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        let text = reg.prometheus_text();
        let a = text.find("lla_a_gauge").unwrap();
        let b = text.find("lla_b_total").unwrap();
        let c = text.find("lla_c_seconds").unwrap();
        assert!(a < b && b < c, "families must be name-sorted");
        assert!(text.contains("lla_c_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("lla_c_seconds_bucket{le=\"2\"} 2"));
        assert!(text.contains("lla_c_seconds_bucket{le=\"+Inf\"} 3"));
        // Deterministic: a second render is byte-identical.
        assert_eq!(text, reg.prometheus_text());
    }

    #[test]
    fn help_text_is_escaped_per_spec() {
        let reg = MetricsRegistry::new();
        reg.counter("lla_weird_total", "line one\nline two with a \\ backslash").inc();
        let text = reg.prometheus_text();
        assert!(
            text.contains("# HELP lla_weird_total line one\\nline two with a \\\\ backslash"),
            "{text}"
        );
        // The embedded newline must not have split the HELP comment.
        assert_eq!(text.lines().count(), 3, "HELP, TYPE, and one sample: {text}");
    }

    #[test]
    fn labeled_series_share_a_family_and_render_canonically() {
        let reg = MetricsRegistry::new();
        reg.counter("lla_l_total", "labeled").add(1);
        reg.counter_with("lla_l_total", "labeled", &[("agent", "resource[0]")]).add(2);
        // Label order is canonicalized: (b, a) and (a, b) share one cell.
        let c1 = reg.counter_with("lla_l_total", "labeled", &[("b", "2"), ("a", "1")]);
        let c2 = reg.counter_with("lla_l_total", "labeled", &[("a", "1"), ("b", "2")]);
        c1.add(3);
        c2.add(4);
        assert_eq!(c1.get(), 7);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE lla_l_total counter"));
        assert_eq!(text.matches("# TYPE lla_l_total").count(), 1, "one header per family");
        assert!(text.contains("lla_l_total 1\n"));
        assert!(text.contains("lla_l_total{agent=\"resource[0]\"} 2"));
        assert!(text.contains("lla_l_total{a=\"1\",b=\"2\"} 7"));
    }

    #[test]
    fn labeled_histogram_splices_le_after_series_labels() {
        let reg = MetricsRegistry::new();
        let h =
            reg.histogram_with("lla_lh_seconds", "labeled histogram", &[("shard", "3")], &[1.0]);
        h.observe(0.5);
        h.observe(2.0);
        let text = reg.prometheus_text();
        assert!(text.contains("lla_lh_seconds_bucket{shard=\"3\",le=\"1\"} 1"), "{text}");
        assert!(text.contains("lla_lh_seconds_bucket{shard=\"3\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lla_lh_seconds_sum{shard=\"3\"} 2.5"), "{text}");
        assert!(text.contains("lla_lh_seconds_count{shard=\"3\"} 2"), "{text}");
    }

    #[test]
    fn hostile_label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("lla_h_total", "hostile", &[("agent", "a\\b\"c\nd")]).inc();
        let text = reg.prometheus_text();
        assert!(text.contains("lla_h_total{agent=\"a\\\\b\\\"c\\nd\"} 1"), "{text}");
        // The raw newline must not have leaked into the exposition.
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn labeled_kind_mismatch_within_a_family_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter_with("lla_mix", "a", &[("agent", "x")]);
        let _ = reg.gauge_with("lla_mix", "a", &[("agent", "y")]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn invalid_label_names_are_rejected() {
        let _ = render_label_key(&[("0bad", "v")]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_name_is_reserved() {
        let _ = render_label_key(&[("le", "v")]);
    }

    #[test]
    fn escape_functions_cover_the_spec_cases() {
        assert_eq!(escape_help("plain"), "plain");
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        // HELP text does not escape quotes — label values do.
        assert_eq!(escape_help("say \"hi\""), "say \"hi\"");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }
}
