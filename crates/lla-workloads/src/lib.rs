//! # `lla-workloads` — workload construction for the LLA reproduction
//!
//! Two families of workloads:
//!
//! * [`paper`] — the workloads of the paper's evaluation: the 3-task base
//!   workload of Figure 4 / Table 1, its 6- and 12-task scalings (§5.3),
//!   the unschedulable variant (§5.4), and the 4-task prototype workload of
//!   §6.2.
//! * [`partition`] — clustered large-scale workloads (per-cluster resource
//!   pools plus a thin shared backbone) and task-set partitioners feeding
//!   [`lla_core::ShardedOptimizer`]'s shard specs.
//! * [`random`] — a seeded generator of random workloads with a
//!   *constructive schedulability guarantee*: it derives critical times
//!   from a witness allocation, so generated workloads are schedulable by
//!   construction (with configurable headroom), which property tests rely
//!   on.
//!
//! All workloads are plain [`lla_core::Problem`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod partition;
pub mod random;

pub use paper::{
    base_workload, base_workload_with, prototype_workload, scaled_workload, PrototypeParams,
};
pub use partition::{clustered_workload, partition_by_affinity, ClusteredWorkloadConfig};
pub use random::{large_scale_workload, RandomWorkloadConfig, TaskShape};
