//! The paper's evaluation workloads.
//!
//! ## The base workload (Figure 4, Table 1)
//!
//! Three tasks over eight resources, each mirroring one style of
//! distributed real-time application. The paper's figure is not machine
//! readable, so the DAG shapes are reconstructed from the prose and from
//! Table 1's structure (see DESIGN.md for the inference):
//!
//! * **Task 1 — push (publish/subscribe, multicast)**: a producer
//!   (`T11`) feeds a propagation stage (`T12`) which fans out to five
//!   consumers (`T13..T17`). Critical time 45ms. Table 1's reported
//!   critical path 44.9 = lat(T11)+lat(T12)+lat(T15) is consistent with
//!   this depth-3 fan-out.
//! * **Task 2 — complex pull (sensor aggregation / RSS)**: a request chain
//!   (`T21→T22→T23`) reaches an aggregator (`T24`), whose result is
//!   distributed to two direct consumers (`T25`, `T26`) and relayed through
//!   `T27` to `T28`. Critical time 76ms.
//! * **Task 3 — simple pull (client/server)**: a six-stage chain
//!   (`T31→…→T36`). Critical time 53ms. Table 1's critical path 52.8
//!   equals the sum of *all* six subtask latencies, confirming the chain.
//!
//! Subtask-to-resource mappings and execution times follow Table 1
//! exactly. All tasks are triggered by periodic events every 100ms.
//!
//! ## The prototype workload (§6.2)
//!
//! Four tasks of three linearly dependent subtasks over three CPUs: two
//! *fast* tasks (WCET 5ms, 40 jobs/s, critical time 105ms) and two *slow*
//! tasks (WCET 13ms, 10 jobs/s, critical time 800ms), utility
//! `f(lat) = −lat`, scheduling lag 5ms, and availability 0.9 (0.1 reserved
//! for the Metronome garbage collector).

use lla_core::{
    Aggregation, ModelError, Problem, Resource, ResourceId, ResourceKind, Task, TaskBuilder,
    TaskId, TriggerSpec, UtilityFn,
};

/// Scheduling lag used for the simulated resources of the base workload.
///
/// The paper's simulation section does not state its lag; the prototype
/// uses 5ms. We use 1ms for the simulation workload, which keeps the share
/// scale comparable to the paper's Table 1 latencies.
pub const BASE_LAG_MS: f64 = 1.0;

/// Critical times of the three base tasks (ms), from §5.1.
pub const BASE_CRITICAL_TIMES: [f64; 3] = [45.0, 76.0, 53.0];

/// Table 1 resource assignment of every subtask of the three base tasks.
pub const BASE_RESOURCES: [&[usize]; 3] =
    [&[0, 1, 2, 3, 4, 5, 6], &[0, 1, 2, 4, 5, 6, 3, 7], &[0, 1, 2, 4, 6, 7]];

/// Table 1 execution times (ms) of every subtask of the three base tasks.
pub const BASE_EXEC_TIMES: [&[f64]; 3] = [
    &[2.0, 3.0, 4.0, 5.0, 4.0, 3.0, 2.0],
    &[2.0, 4.0, 3.0, 6.0, 7.0, 5.0, 2.0, 3.0],
    &[3.0, 2.0, 2.0, 3.0, 4.0, 4.0],
];

/// Precedence edges of the three base tasks (reconstructed DAG shapes).
pub const BASE_EDGES: [&[(usize, usize)]; 3] = [
    // Task 1: T11 -> T12 -> {T13, T14, T15, T16, T17}.
    &[(0, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6)],
    // Task 2: T21 -> T22 -> T23 -> T24 -> {T25, T26, T27}; T27 -> T28.
    &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (3, 6), (6, 7)],
    // Task 3: chain T31 -> ... -> T36.
    &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
];

/// The eight resources of the base workload.
///
/// Resources 0–3 are CPUs and 4–7 network links (the paper uses both kinds
/// but does not state which index is which; LLA is agnostic).
pub fn base_resources() -> Vec<Resource> {
    (0..8)
        .map(|i| {
            let kind = if i < 4 { ResourceKind::Cpu } else { ResourceKind::NetworkLink };
            Resource::new(ResourceId::new(i), kind).with_lag(BASE_LAG_MS)
        })
        .collect()
}

fn base_task(
    index: usize,
    id: TaskId,
    critical_time_scale: f64,
    aggregation: Aggregation,
    k: f64,
) -> Result<Task, ModelError> {
    let names = ["push-multicast", "complex-pull", "client-server"];
    let mut b = TaskBuilder::new(names[index]);
    for (j, (&r, &c)) in BASE_RESOURCES[index].iter().zip(BASE_EXEC_TIMES[index]).enumerate() {
        b.subtask(format!("T{}{}", index + 1, j + 1), ResourceId::new(r), c);
    }
    for &(a, c) in BASE_EDGES[index] {
        b.edge(a, c)?;
    }
    let ct = BASE_CRITICAL_TIMES[index] * critical_time_scale;
    b.critical_time(ct)
        .utility(UtilityFn::linear_for_deadline(k, ct))
        .trigger(TriggerSpec::Periodic { period: 100.0 })
        .aggregation(aggregation);
    b.build(id)
}

/// The 3-task base workload with the paper's defaults: path-weighted
/// aggregation and utility `f(lat) = 2·C − lat`.
///
/// # Panics
///
/// Never panics: the workload tables are statically valid.
pub fn base_workload() -> Problem {
    base_workload_with(Aggregation::PathWeighted, 2.0)
}

/// The base workload with a chosen aggregation variant and utility scale
/// `k` (`f(lat) = k·C − lat`, `k ≥ 1`).
///
/// # Panics
///
/// Panics if `k < 1` (propagated from
/// [`UtilityFn::linear_for_deadline`]).
pub fn base_workload_with(aggregation: Aggregation, k: f64) -> Problem {
    let tasks: Vec<Task> = (0..3)
        .map(|i| base_task(i, TaskId::new(i), 1.0, aggregation, k).expect("static workload"))
        .collect();
    Problem::new(base_resources(), tasks).expect("static workload")
}

/// The scaled workload of §5.3/§5.4: the base tasks replicated
/// `replication` times (3, 6 or 12 tasks for replication 1, 2, 4).
///
/// With `scale_critical_times = true` the critical times are multiplied by
/// the replication factor, matching the paper's overprovisioning that keeps
/// the scaled workload schedulable (§5.3). With `false`, critical times
/// stay at the base values, reproducing the *unschedulable* workload used
/// for the schedulability test (§5.4, Figure 7).
///
/// # Panics
///
/// Panics if `replication == 0`.
pub fn scaled_workload(replication: usize, scale_critical_times: bool) -> Problem {
    assert!(replication > 0, "replication must be at least 1");
    let scale = if scale_critical_times { replication as f64 } else { 1.0 };
    let mut tasks = Vec::with_capacity(3 * replication);
    for rep in 0..replication {
        for i in 0..3 {
            let id = TaskId::new(rep * 3 + i);
            tasks.push(
                base_task(i, id, scale, Aggregation::PathWeighted, 2.0).expect("static workload"),
            );
        }
    }
    Problem::new(base_resources(), tasks).expect("static workload")
}

/// Parameters of the §6.2 prototype workload, exposed so experiments can
/// derive expected values (minimum shares etc.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrototypeParams {
    /// Number of CPUs (3 in the paper).
    pub num_cpus: usize,
    /// WCET of fast-task subtasks (ms).
    pub fast_wcet: f64,
    /// Period of fast tasks (ms) — 25ms = 40 jobs/s.
    pub fast_period: f64,
    /// Critical time of fast tasks (ms).
    pub fast_critical_time: f64,
    /// WCET of slow-task subtasks (ms).
    pub slow_wcet: f64,
    /// Period of slow tasks (ms) — 100ms = 10 jobs/s.
    pub slow_period: f64,
    /// Critical time of slow tasks (ms).
    pub slow_critical_time: f64,
    /// Proportional-share scheduling lag (ms).
    pub lag: f64,
    /// CPU availability after the garbage-collector reservation.
    pub availability: f64,
}

impl Default for PrototypeParams {
    fn default() -> Self {
        PrototypeParams {
            num_cpus: 3,
            fast_wcet: 5.0,
            fast_period: 25.0,
            fast_critical_time: 105.0,
            slow_wcet: 13.0,
            slow_period: 100.0,
            slow_critical_time: 800.0,
            lag: 5.0,
            availability: 0.9,
        }
    }
}

impl PrototypeParams {
    /// Minimum sustainable share of a fast subtask (`rate · WCET` = 0.2).
    pub fn fast_min_share(&self) -> f64 {
        self.fast_wcet / self.fast_period
    }

    /// Minimum sustainable share of a slow subtask (0.13).
    pub fn slow_min_share(&self) -> f64 {
        self.slow_wcet / self.slow_period
    }
}

/// The §6.2 prototype workload: four 3-stage pipeline tasks (two fast, two
/// slow) across three CPUs, every CPU hosting one subtask of every task.
///
/// # Panics
///
/// Never panics for valid `params` (positive times, availability in
/// `(0, 1]`).
pub fn prototype_workload(params: &PrototypeParams) -> Problem {
    let resources: Vec<Resource> = (0..params.num_cpus)
        .map(|i| {
            Resource::new(ResourceId::new(i), ResourceKind::Cpu)
                .with_lag(params.lag)
                .with_availability(params.availability)
                .with_name(format!("cpu{i}"))
        })
        .collect();

    let mut tasks = Vec::with_capacity(4);
    for t in 0..4 {
        let fast = t < 2;
        let (wcet, period, ct) = if fast {
            (params.fast_wcet, params.fast_period, params.fast_critical_time)
        } else {
            (params.slow_wcet, params.slow_period, params.slow_critical_time)
        };
        let mut b = TaskBuilder::new(if fast { format!("fast{t}") } else { format!("slow{t}") });
        let idx: Vec<usize> = (0..params.num_cpus)
            .map(|cpu| b.subtask(format!("t{t}s{cpu}"), ResourceId::new(cpu), wcet))
            .collect();
        b.chain(&idx).expect("indices are valid");
        b.critical_time(ct)
            .utility(UtilityFn::negative_latency())
            .trigger(TriggerSpec::Periodic { period })
            .aggregation(Aggregation::Sum);
        tasks.push(b.build(TaskId::new(t)).expect("static workload"));
    }
    Problem::new(resources, tasks).expect("static workload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_workload_matches_table1_structure() {
        let p = base_workload();
        assert_eq!(p.resources().len(), 8);
        assert_eq!(p.tasks().len(), 3);
        assert_eq!(p.tasks()[0].len(), 7);
        assert_eq!(p.tasks()[1].len(), 8);
        assert_eq!(p.tasks()[2].len(), 6);
        for (t, task) in p.tasks().iter().enumerate() {
            assert_eq!(task.critical_time(), BASE_CRITICAL_TIMES[t]);
            for (s, sub) in task.subtasks().iter().enumerate() {
                assert_eq!(sub.resource().index(), BASE_RESOURCES[t][s]);
                assert_eq!(sub.exec_time(), BASE_EXEC_TIMES[t][s]);
            }
        }
    }

    #[test]
    fn task1_is_depth3_fanout() {
        let p = base_workload();
        let g = p.tasks()[0].graph();
        assert_eq!(g.paths().len(), 5);
        for path in g.paths() {
            assert_eq!(path.len(), 3);
            assert_eq!(path.subtasks()[0], 0);
            assert_eq!(path.subtasks()[1], 1);
        }
        assert_eq!(g.path_weight(0), 5);
        assert_eq!(g.path_weight(1), 5);
    }

    #[test]
    fn task2_has_three_paths() {
        let p = base_workload();
        let g = p.tasks()[1].graph();
        assert_eq!(g.paths().len(), 3);
        let lens: Vec<usize> = g.paths().iter().map(|p| p.len()).collect();
        assert!(lens.contains(&5));
        assert!(lens.contains(&6));
        assert_eq!(g.path_weight(3), 3, "aggregator T24 lies on all paths");
    }

    #[test]
    fn task3_is_chain() {
        let p = base_workload();
        assert!(p.tasks()[2].graph().is_chain());
    }

    #[test]
    fn every_subtask_uses_distinct_resource_within_task() {
        // §2.1's simplifying assumption, honored by the Table 1 mapping.
        let p = base_workload();
        for task in p.tasks() {
            let mut seen = std::collections::HashSet::new();
            for s in task.subtasks() {
                assert!(seen.insert(s.resource()), "duplicate resource in {}", task.name());
            }
        }
    }

    #[test]
    fn scaled_workload_replicates() {
        let p6 = scaled_workload(2, true);
        assert_eq!(p6.tasks().len(), 6);
        assert_eq!(p6.tasks()[3].critical_time(), 2.0 * BASE_CRITICAL_TIMES[0]);
        let p12 = scaled_workload(4, true);
        assert_eq!(p12.tasks().len(), 12);
        // Unscaled keeps the base critical times (the §5.4 workload).
        let bad = scaled_workload(2, false);
        assert_eq!(bad.tasks()[3].critical_time(), BASE_CRITICAL_TIMES[0]);
    }

    #[test]
    fn prototype_matches_section6() {
        let params = PrototypeParams::default();
        let p = prototype_workload(&params);
        assert_eq!(p.resources().len(), 3);
        assert_eq!(p.tasks().len(), 4);
        for r in p.resources() {
            assert_eq!(r.availability(), 0.9);
            assert_eq!(r.lag(), 5.0);
            // Each CPU hosts one subtask of each task.
            assert_eq!(p.subtasks_on(r.id()).len(), 4);
        }
        assert!((params.fast_min_share() - 0.2).abs() < 1e-12);
        assert!((params.slow_min_share() - 0.13).abs() < 1e-12);
        // Paper: sum of minimum shares per CPU is 0.66.
        let total = 2.0 * params.fast_min_share() + 2.0 * params.slow_min_share();
        assert!((total - 0.66).abs() < 1e-12);
        for t in p.tasks() {
            assert!(t.graph().is_chain());
            assert_eq!(t.len(), 3);
        }
        assert_eq!(p.tasks()[0].utility_fn().value(10.0), -10.0);
    }

    #[test]
    fn sum_variant_differs_only_in_weights() {
        let pw = base_workload_with(Aggregation::PathWeighted, 2.0);
        let sum = base_workload_with(Aggregation::Sum, 2.0);
        assert_eq!(sum.tasks()[0].weights(), &[1.0; 7][..]);
        assert_eq!(pw.tasks()[0].weights()[0], 5.0);
    }
}
