//! Seeded random workload generation with a constructive schedulability
//! guarantee.
//!
//! The generator first draws task structures (DAG shape, resource
//! assignment, execution times), then builds a *witness allocation*: every
//! subtask on resource `r` gets an equal slice of `target_load · B_r`
//! share, which determines a witness latency per subtask. Critical times
//! are set to `deadline_headroom ×` the witness critical-path latency, so
//! the witness itself satisfies both constraint families — the generated
//! workload is schedulable by construction. Property tests use this to
//! assert that LLA converges on *every* generated workload.

use lla_core::{
    Aggregation, ModelError, Problem, Resource, ResourceId, ResourceKind, SubtaskGraph, Task,
    TaskBuilder, TaskId, TriggerSpec, UtilityFn,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The DAG shape family a generated task is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskShape {
    /// A linear pipeline (client/server style).
    Chain,
    /// Root → relay → many leaves (push/multicast style).
    FanOut,
    /// Root → several parallel branches → join (aggregation style).
    Diamond,
    /// Random DAG: each node gets at least one earlier predecessor.
    RandomDag,
    /// Cycle deterministically through the other four shapes.
    Mixed,
}

/// Configuration for [`RandomWorkloadConfig::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkloadConfig {
    /// Number of resources (half CPUs, half links).
    pub num_resources: usize,
    /// Number of tasks.
    pub num_tasks: usize,
    /// Minimum subtasks per task (≥ 1).
    pub min_subtasks: usize,
    /// Maximum subtasks per task (inclusive).
    pub max_subtasks: usize,
    /// Task DAG shape family.
    pub shape: TaskShape,
    /// Uniform range of subtask execution times (ms).
    pub exec_time_range: (f64, f64),
    /// Scheduling lag of every resource (ms).
    pub lag: f64,
    /// Fraction of each resource's availability consumed by the witness
    /// allocation, in `(0, 1)`. Values near 1 put resources "close to
    /// congestion" as in §5.1.
    pub target_load: f64,
    /// Critical time = headroom × witness critical-path latency (> 1).
    pub deadline_headroom: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for RandomWorkloadConfig {
    fn default() -> Self {
        RandomWorkloadConfig {
            num_resources: 8,
            num_tasks: 4,
            min_subtasks: 3,
            max_subtasks: 8,
            shape: TaskShape::Mixed,
            exec_time_range: (1.0, 8.0),
            lag: 1.0,
            target_load: 0.9,
            deadline_headroom: 1.5,
            seed: 42,
        }
    }
}

/// A large-scale benchmark workload with `num_tasks` tasks over a resource
/// pool that grows proportionally (one resource per two tasks, minimum 8,
/// rounded up to an even count so the CPU/link split stays balanced).
///
/// This is the scaling-sweep entry point used by `lla-bench`: per-resource
/// contention stays roughly constant as the task count grows, so iteration
/// cost — not congestion collapse — dominates the measurement at 100, 1 000
/// and 10 000 tasks. Generation is deterministic given `(num_tasks, seed)`.
pub fn large_scale_workload(num_tasks: usize, seed: u64) -> Result<Problem, ModelError> {
    let num_resources = (num_tasks / 2).max(8).next_multiple_of(2);
    RandomWorkloadConfig {
        num_resources,
        num_tasks,
        min_subtasks: 3,
        max_subtasks: 6,
        shape: TaskShape::Mixed,
        exec_time_range: (1.0, 8.0),
        lag: 1.0,
        target_load: 0.85,
        deadline_headroom: 1.5,
        seed,
    }
    .generate()
}

pub(crate) struct TaskDraft {
    pub(crate) resources: Vec<ResourceId>,
    pub(crate) exec_times: Vec<f64>,
    pub(crate) edges: Vec<(usize, usize)>,
}

impl RandomWorkloadConfig {
    /// Generates the workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for out-of-range
    /// configuration (empty ranges, loads outside `(0, 1)`, headroom ≤ 1).
    pub fn generate(&self) -> Result<Problem, ModelError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        let resources: Vec<Resource> = (0..self.num_resources)
            .map(|i| {
                let kind = if i % 2 == 0 { ResourceKind::Cpu } else { ResourceKind::NetworkLink };
                Resource::new(ResourceId::new(i), kind).with_lag(self.lag)
            })
            .collect();

        // Phase 1: draw structures.
        let mut drafts = Vec::with_capacity(self.num_tasks);
        for t in 0..self.num_tasks {
            drafts.push(self.draw_task(t, &mut rng)?);
        }

        self.assemble(resources, &drafts)
    }

    /// Phases 2–3 of generation: witness allocation → critical times →
    /// [`Problem`]. Shared with the clustered generator in
    /// [`partition`](crate::partition), which draws its own structures.
    pub(crate) fn assemble(
        &self,
        resources: Vec<Resource>,
        drafts: &[TaskDraft],
    ) -> Result<Problem, ModelError> {
        // Phase 2: witness allocation. Count subtasks per resource.
        let mut per_resource = vec![0usize; resources.len()];
        for d in drafts {
            for r in &d.resources {
                per_resource[r.index()] += 1;
            }
        }
        // Witness latency per subtask: equal share split of the target load.
        let witness: Vec<Vec<f64>> = drafts
            .iter()
            .map(|d| {
                d.resources
                    .iter()
                    .zip(&d.exec_times)
                    .map(|(r, c)| {
                        let n_r = per_resource[r.index()] as f64;
                        let b_r = 1.0; // generated resources have B_r = 1
                        let share = self.target_load * b_r / n_r;
                        (c + self.lag) / share
                    })
                    .collect()
            })
            .collect();

        // Phase 3: critical times from the witness critical path.
        let mut tasks: Vec<Task> = Vec::with_capacity(drafts.len());
        for (t, d) in drafts.iter().enumerate() {
            let id = TaskId::new(t);
            let graph = SubtaskGraph::new(id, d.resources.len(), &d.edges)?;
            let (_, witness_cp) = graph.critical_path(&witness[t]);
            let ct = self.deadline_headroom * witness_cp;

            let mut b = TaskBuilder::new(format!("rand{t}"));
            for (s, (r, c)) in d.resources.iter().zip(&d.exec_times).enumerate() {
                b.subtask(format!("rand{t}s{s}"), *r, *c);
            }
            for &(a, c) in &d.edges {
                b.edge(a, c)?;
            }
            b.critical_time(ct)
                .utility(UtilityFn::linear_for_deadline(2.0, ct))
                .trigger(TriggerSpec::Periodic { period: 100.0 })
                .aggregation(Aggregation::PathWeighted);
            tasks.push(b.build(id)?);
        }

        Problem::new(resources, tasks)
    }

    fn validate(&self) -> Result<(), ModelError> {
        if self.num_resources == 0 {
            return Err(ModelError::InvalidParameter { what: "num_resources", value: 0.0 });
        }
        if self.num_tasks == 0 {
            return Err(ModelError::InvalidParameter { what: "num_tasks", value: 0.0 });
        }
        if self.min_subtasks == 0 || self.min_subtasks > self.max_subtasks {
            return Err(ModelError::InvalidParameter {
                what: "subtask count range",
                value: self.min_subtasks as f64,
            });
        }
        if !(self.target_load > 0.0 && self.target_load < 1.0) {
            return Err(ModelError::InvalidParameter {
                what: "target load",
                value: self.target_load,
            });
        }
        if self.deadline_headroom <= 1.0 {
            return Err(ModelError::InvalidParameter {
                what: "deadline headroom",
                value: self.deadline_headroom,
            });
        }
        let (lo, hi) = self.exec_time_range;
        if !(lo > 0.0 && hi >= lo) {
            return Err(ModelError::InvalidParameter { what: "exec time range", value: lo });
        }
        Ok(())
    }

    fn draw_task(&self, index: usize, rng: &mut StdRng) -> Result<TaskDraft, ModelError> {
        let pool: Vec<usize> = (0..self.num_resources).collect();
        self.draw_task_in_pool(index, rng, &pool)
    }

    /// Draws one task whose resources come from `pool` (global resource
    /// indices). The clustered generator in [`partition`](crate::partition)
    /// uses this to confine a cluster's tasks to the cluster's resource
    /// slice.
    pub(crate) fn draw_task_in_pool(
        &self,
        index: usize,
        rng: &mut StdRng,
        pool: &[usize],
    ) -> Result<TaskDraft, ModelError> {
        let n = rng.gen_range(self.min_subtasks..=self.max_subtasks);
        let shape = match self.shape {
            TaskShape::Mixed => match index % 4 {
                0 => TaskShape::Chain,
                1 => TaskShape::FanOut,
                2 => TaskShape::Diamond,
                _ => TaskShape::RandomDag,
            },
            s => s,
        };
        let edges = match shape {
            TaskShape::Chain | TaskShape::Mixed => (1..n).map(|i| (i - 1, i)).collect(),
            TaskShape::FanOut => {
                // 0 -> 1 -> {2..n}; degenerate sizes fall back to a chain.
                if n <= 2 {
                    (1..n).map(|i| (i - 1, i)).collect()
                } else {
                    let mut e = vec![(0, 1)];
                    e.extend((2..n).map(|i| (1, i)));
                    e
                }
            }
            TaskShape::Diamond => {
                if n <= 2 {
                    (1..n).map(|i| (i - 1, i)).collect()
                } else {
                    // 0 -> {1..n-1} -> n-1? Use 0 -> mid -> last.
                    let mut e = Vec::new();
                    for i in 1..n - 1 {
                        e.push((0, i));
                        e.push((i, n - 1));
                    }
                    e
                }
            }
            TaskShape::RandomDag => {
                let mut e = Vec::new();
                for i in 1..n {
                    let pred = rng.gen_range(0..i);
                    e.push((pred, i));
                    // Occasionally add a second precedence edge.
                    if i >= 2 && rng.gen_bool(0.3) {
                        let extra = rng.gen_range(0..i);
                        if extra != pred {
                            e.push((extra, i));
                        }
                    }
                }
                e
            }
        };

        // Distinct resources within a task when possible (§2.1 assumption).
        let mut resources: Vec<ResourceId> = if n <= pool.len() {
            // Rejection-sample n distinct picks: n is at most the subtask
            // cap while the pool scales with the workload (hundreds of
            // thousands of resources at the 1M-task point), so a full
            // O(|pool|) shuffle per task would dominate generation.
            let mut picks: Vec<usize> = Vec::with_capacity(n);
            while picks.len() < n {
                let c = pool[rng.gen_range(0..pool.len())];
                if !picks.contains(&c) {
                    picks.push(c);
                }
            }
            picks.into_iter().map(ResourceId::new).collect()
        } else {
            (0..n).map(|_| ResourceId::new(pool[rng.gen_range(0..pool.len())])).collect()
        };
        // Stable order is irrelevant to the math; shuffle for variety.
        resources.shuffle(rng);

        let (lo, hi) = self.exec_time_range;
        let exec_times: Vec<f64> =
            (0..n).map(|_| if lo == hi { lo } else { rng.gen_range(lo..hi) }).collect();

        Ok(TaskDraft { resources, exec_times, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomWorkloadConfig::default();
        let a = cfg.generate().unwrap();
        let b = cfg.generate().unwrap();
        assert_eq!(a.tasks().len(), b.tasks().len());
        for (ta, tb) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(ta.critical_time(), tb.critical_time());
            for (sa, sb) in ta.subtasks().iter().zip(tb.subtasks()) {
                assert_eq!(sa.resource(), sb.resource());
                assert_eq!(sa.exec_time(), sb.exec_time());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomWorkloadConfig::default().generate().unwrap();
        let b = RandomWorkloadConfig { seed: 43, ..Default::default() }.generate().unwrap();
        let ca: Vec<f64> = a.tasks().iter().map(|t| t.critical_time()).collect();
        let cb: Vec<f64> = b.tasks().iter().map(|t| t.critical_time()).collect();
        assert_ne!(ca, cb);
    }

    #[test]
    fn witness_allocation_is_feasible() {
        // Rebuild the witness and verify the constructive guarantee.
        for seed in 0..20 {
            let cfg = RandomWorkloadConfig { seed, ..Default::default() };
            let p = cfg.generate().unwrap();
            // Reconstruct: equal split of target load per resource.
            let mut n_r = vec![0usize; p.resources().len()];
            for t in p.tasks() {
                for s in t.subtasks() {
                    n_r[s.resource().index()] += 1;
                }
            }
            let lats: Vec<Vec<f64>> = p
                .tasks()
                .iter()
                .map(|t| {
                    t.subtasks()
                        .iter()
                        .map(|s| {
                            let share = cfg.target_load / n_r[s.resource().index()] as f64;
                            (s.exec_time() + cfg.lag) / share
                        })
                        .collect()
                })
                .collect();
            assert!(
                p.is_feasible(&lats, 1e-9),
                "witness must be feasible (seed {seed}): resource violation {}, path violation {}",
                p.max_resource_violation(&lats),
                p.max_path_violation(&lats)
            );
        }
    }

    #[test]
    fn shapes_produce_valid_graphs() {
        for shape in [
            TaskShape::Chain,
            TaskShape::FanOut,
            TaskShape::Diamond,
            TaskShape::RandomDag,
            TaskShape::Mixed,
        ] {
            let cfg = RandomWorkloadConfig { shape, num_tasks: 8, ..Default::default() };
            let p = cfg.generate().unwrap();
            assert_eq!(p.tasks().len(), 8);
            for t in p.tasks() {
                assert!(!t.graph().paths().is_empty());
            }
        }
    }

    #[test]
    fn chain_shape_is_actually_chains() {
        let cfg = RandomWorkloadConfig { shape: TaskShape::Chain, ..Default::default() };
        let p = cfg.generate().unwrap();
        for t in p.tasks() {
            assert!(t.graph().is_chain());
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = RandomWorkloadConfig::default();
        assert!(RandomWorkloadConfig { num_tasks: 0, ..base }.generate().is_err());
        assert!(RandomWorkloadConfig { target_load: 1.5, ..base }.generate().is_err());
        assert!(RandomWorkloadConfig { deadline_headroom: 1.0, ..base }.generate().is_err());
        assert!(RandomWorkloadConfig { min_subtasks: 5, max_subtasks: 3, ..base }
            .generate()
            .is_err());
        assert!(RandomWorkloadConfig { exec_time_range: (0.0, 1.0), ..base }.generate().is_err());
    }

    #[test]
    fn large_scale_workload_scales_resources_and_stays_feasible() {
        let p = large_scale_workload(100, 7).unwrap();
        assert_eq!(p.tasks().len(), 100);
        assert_eq!(p.resources().len(), 50);
        // Same constructive guarantee as the underlying generator.
        let init = p.initial_allocation();
        assert!(init.iter().all(|row| !row.is_empty()));
        let small = large_scale_workload(4, 7).unwrap();
        assert_eq!(small.resources().len(), 8, "resource pool is floored at 8");
    }

    #[test]
    fn more_subtasks_than_resources_is_allowed() {
        let cfg = RandomWorkloadConfig {
            num_resources: 2,
            min_subtasks: 5,
            max_subtasks: 6,
            ..Default::default()
        };
        let p = cfg.generate().unwrap();
        for t in p.tasks() {
            assert!(t.len() >= 5);
        }
    }
}
