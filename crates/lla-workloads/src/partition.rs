//! Clustered large-scale workloads and task-set partitioners for the
//! sharded optimizer.
//!
//! The million-task north star assumes workloads with *locality*: most
//! traffic stays inside a resource cluster (a rack, a site), and only a
//! thin backbone is shared. [`ClusteredWorkloadConfig`] generates exactly
//! that shape — per-cluster resource pools with a small shared backbone of
//! network links — while carrying over the witness-allocation
//! schedulability guarantee of [`RandomWorkloadConfig`]. Because each
//! cluster's tasks occupy a contiguous index range of equal size,
//! [`ShardSpec::contiguous`] with any shard count dividing the cluster
//! count aligns exactly with cluster boundaries, which is what the
//! shard-scaling bench sweeps exploit.
//!
//! For workloads without a known clustering, [`partition_by_affinity`]
//! recovers one greedily from resource-touch sets.

use crate::random::{RandomWorkloadConfig, TaskShape};
use lla_core::{ModelError, Problem, Resource, ResourceId, ResourceKind, ShardSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`ClusteredWorkloadConfig::generate`]: `num_clusters`
/// clusters, each with its own resource pool and a contiguous block of
/// `tasks_per_cluster` tasks, plus `backbone_links` network links shared by
/// every cluster's cross-traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredWorkloadConfig {
    /// Number of resource clusters (= natural shard count).
    pub num_clusters: usize,
    /// Tasks per cluster (tasks are numbered cluster-contiguously).
    pub tasks_per_cluster: usize,
    /// Resources per cluster (alternating CPU / link).
    pub resources_per_cluster: usize,
    /// Globally shared backbone links, appended after all cluster pools.
    pub backbone_links: usize,
    /// Probability that a task gains one extra hop over a backbone link
    /// (in `[0, 1]`; requires `backbone_links > 0` when positive).
    pub cross_traffic: f64,
    /// Structure/witness parameters shared with the flat generator; its
    /// `num_resources`/`num_tasks` fields are ignored (derived from the
    /// cluster geometry) and its `seed` drives the whole generation.
    pub base: RandomWorkloadConfig,
}

impl Default for ClusteredWorkloadConfig {
    fn default() -> Self {
        ClusteredWorkloadConfig {
            num_clusters: 4,
            tasks_per_cluster: 25,
            resources_per_cluster: 16,
            backbone_links: 2,
            cross_traffic: 0.1,
            base: RandomWorkloadConfig {
                min_subtasks: 3,
                max_subtasks: 6,
                shape: TaskShape::Mixed,
                target_load: 0.85,
                ..RandomWorkloadConfig::default()
            },
        }
    }
}

impl ClusteredWorkloadConfig {
    /// Generates the workload and its natural partition (one shard per
    /// cluster). Deterministic given the config.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an empty cluster
    /// geometry, `cross_traffic` outside `[0, 1]` (or positive with no
    /// backbone), or invalid base structure/witness parameters.
    pub fn generate(&self) -> Result<(Problem, ShardSpec), ModelError> {
        self.validate()?;
        let nr = self.num_clusters * self.resources_per_cluster + self.backbone_links;
        let nt = self.num_clusters * self.tasks_per_cluster;
        let core = RandomWorkloadConfig { num_resources: nr, num_tasks: nt, ..self.base };
        let mut rng = StdRng::seed_from_u64(self.base.seed);

        let mut resources: Vec<Resource> = Vec::with_capacity(nr);
        for c in 0..self.num_clusters {
            for i in 0..self.resources_per_cluster {
                let kind = if i % 2 == 0 { ResourceKind::Cpu } else { ResourceKind::NetworkLink };
                let id = ResourceId::new(c * self.resources_per_cluster + i);
                resources.push(Resource::new(id, kind).with_lag(self.base.lag));
            }
        }
        let backbone_base = self.num_clusters * self.resources_per_cluster;
        for i in 0..self.backbone_links {
            let id = ResourceId::new(backbone_base + i);
            resources.push(Resource::new(id, ResourceKind::NetworkLink).with_lag(self.base.lag));
        }

        let (lo, hi) = self.base.exec_time_range;
        let mut drafts = Vec::with_capacity(nt);
        for c in 0..self.num_clusters {
            let pool: Vec<usize> =
                (c * self.resources_per_cluster..(c + 1) * self.resources_per_cluster).collect();
            for t in 0..self.tasks_per_cluster {
                let index = c * self.tasks_per_cluster + t;
                let mut draft = core.draw_task_in_pool(index, &mut rng, &pool)?;
                if self.cross_traffic > 0.0 && rng.gen_bool(self.cross_traffic) {
                    // One extra hop over a shared backbone link, appended as
                    // a successor of a random existing subtask.
                    let n = draft.resources.len();
                    let link = backbone_base + rng.gen_range(0..self.backbone_links);
                    draft.resources.push(ResourceId::new(link));
                    draft.exec_times.push(if lo == hi { lo } else { rng.gen_range(lo..hi) });
                    draft.edges.push((rng.gen_range(0..n), n));
                }
                drafts.push(draft);
            }
        }

        let problem = core.assemble(resources, &drafts)?;
        let groups = (0..self.num_clusters)
            .map(|c| (c * self.tasks_per_cluster..(c + 1) * self.tasks_per_cluster).collect())
            .collect();
        Ok((problem, ShardSpec::from_groups(groups)))
    }

    fn validate(&self) -> Result<(), ModelError> {
        if self.num_clusters == 0 {
            return Err(ModelError::InvalidParameter { what: "num_clusters", value: 0.0 });
        }
        if self.tasks_per_cluster == 0 {
            return Err(ModelError::InvalidParameter { what: "tasks_per_cluster", value: 0.0 });
        }
        if self.resources_per_cluster == 0 {
            return Err(ModelError::InvalidParameter { what: "resources_per_cluster", value: 0.0 });
        }
        if !(0.0..=1.0).contains(&self.cross_traffic) {
            return Err(ModelError::InvalidParameter {
                what: "cross_traffic",
                value: self.cross_traffic,
            });
        }
        if self.cross_traffic > 0.0 && self.backbone_links == 0 {
            return Err(ModelError::InvalidParameter {
                what: "backbone_links (required by cross_traffic)",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// The scaling-sweep entry point used by `lla-bench` for the 100k/1M
/// points: `num_tasks` tasks over `num_clusters` equal clusters (task
/// count must be divisible by the cluster count) with a thin shared
/// backbone (two links per cluster) and 10% cross-traffic. Returns the
/// problem and its natural per-cluster [`ShardSpec`]; coarser shardings
/// come from [`ShardSpec::contiguous`] with any divisor of
/// `num_clusters`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when `num_clusters` is zero or
/// does not divide `num_tasks`.
pub fn clustered_workload(
    num_tasks: usize,
    num_clusters: usize,
    seed: u64,
) -> Result<(Problem, ShardSpec), ModelError> {
    if num_clusters == 0 || !num_tasks.is_multiple_of(num_clusters) {
        return Err(ModelError::InvalidParameter {
            what: "num_clusters must divide num_tasks",
            value: num_clusters as f64,
        });
    }
    let tasks_per_cluster = num_tasks / num_clusters;
    // Keep per-cluster contention roughly constant as the sweep scales:
    // one resource per two tasks, floored at 16, like the flat generator.
    let resources_per_cluster = (tasks_per_cluster / 2).max(16).next_multiple_of(2);
    let base = ClusteredWorkloadConfig::default();
    ClusteredWorkloadConfig {
        num_clusters,
        tasks_per_cluster,
        resources_per_cluster,
        backbone_links: 2 * num_clusters,
        cross_traffic: 0.1,
        base: RandomWorkloadConfig { seed, ..base.base },
    }
    .generate()
}

/// Greedy resource-affinity partitioner for problems with no known
/// clustering: tasks are placed in index order onto the shard (of
/// `num_shards`, capacity `⌈nt/num_shards⌉`) that already touches the
/// most of their resources, ties breaking to the lowest shard index.
/// Deterministic; always returns a valid partition accepted by
/// [`ShardedOptimizer::new`](lla_core::ShardedOptimizer::new).
pub fn partition_by_affinity(problem: &Problem, num_shards: usize) -> ShardSpec {
    let nt = problem.tasks().len();
    let k = num_shards.clamp(1, nt.max(1));
    let capacity = nt.div_ceil(k);
    let nr = problem.resources().len();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut touches: Vec<Vec<bool>> = vec![vec![false; nr]; k];
    for (t, task) in problem.tasks().iter().enumerate() {
        let mut best = 0;
        let mut best_score = -1i64;
        for (s, group) in groups.iter().enumerate() {
            if group.len() >= capacity {
                continue;
            }
            let score =
                task.subtasks().iter().filter(|sub| touches[s][sub.resource().index()]).count()
                    as i64;
            if score > best_score {
                best = s;
                best_score = score;
            }
        }
        groups[best].push(t);
        for sub in problem.tasks()[t].subtasks() {
            touches[best][sub.resource().index()] = true;
        }
    }
    groups.retain(|g| !g.is_empty());
    ShardSpec::from_groups(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{Optimizer, OptimizerConfig, ResourceOwner, ShardedOptimizer};

    #[test]
    fn clustered_generation_is_deterministic_and_partitioned() {
        let (p1, spec1) = clustered_workload(100, 4, 7).unwrap();
        let (p2, spec2) = clustered_workload(100, 4, 7).unwrap();
        assert_eq!(spec1, spec2);
        assert_eq!(spec1.num_shards(), 4);
        assert_eq!(spec1.groups().iter().map(Vec::len).sum::<usize>(), 100);
        for (ta, tb) in p1.tasks().iter().zip(p2.tasks()) {
            assert_eq!(ta.critical_time(), tb.critical_time());
        }
    }

    #[test]
    fn cluster_resources_are_exclusive_and_backbone_is_shared() {
        let (p, spec) = clustered_workload(200, 4, 11).unwrap();
        let nr = p.resources().len();
        let sharded = ShardedOptimizer::new(p, OptimizerConfig::default(), spec).unwrap();
        let mut coordinated = 0;
        for r in 0..nr {
            if sharded.resource_owner(r) == ResourceOwner::Coordinator {
                coordinated += 1;
            }
        }
        // Only the backbone (and any unused cluster resources) goes to the
        // coordinator; with 10% cross-traffic that is a thin slice.
        assert!(coordinated < nr / 4, "{coordinated}/{nr} coordinator-owned");
        assert!(sharded.num_shared_resources() <= 8, "at most the backbone is shared");
    }

    #[test]
    fn clustered_workload_is_schedulable_and_sharded_lla_converges() {
        let (p, spec) = clustered_workload(40, 4, 3).unwrap();
        let mut opt = ShardedOptimizer::new(p, OptimizerConfig::default(), spec).unwrap();
        let outcome = opt.run_to_convergence(20_000);
        assert!(outcome.converged, "clustered workloads keep the witness guarantee");
    }

    #[test]
    fn contiguous_spec_aligns_with_cluster_boundaries() {
        let (_, spec) = clustered_workload(80, 8, 5).unwrap();
        let coarse = lla_core::ShardSpec::contiguous(80, 4);
        for (w, group) in coarse.groups().iter().enumerate() {
            let merged: Vec<usize> =
                spec.groups()[2 * w..2 * w + 2].iter().flatten().copied().collect();
            assert_eq!(group, &merged, "2 clusters per shard at half the cluster count");
        }
    }

    #[test]
    fn affinity_partitioner_recovers_clusters() {
        let (p, spec) = clustered_workload(80, 4, 9).unwrap();
        let recovered = partition_by_affinity(&p, 4);
        assert_eq!(recovered, spec, "greedy affinity recovers the planted clustering");
    }

    #[test]
    fn affinity_partitioner_is_valid_on_unclustered_workloads() {
        let p = crate::random::large_scale_workload(60, 17).unwrap();
        let spec = partition_by_affinity(&p, 8);
        let mono_utility = {
            let mut o = Optimizer::new(p.clone(), OptimizerConfig::default());
            o.run(400);
            o.utility()
        };
        let mut sharded = ShardedOptimizer::new(p, OptimizerConfig::default(), spec).unwrap();
        sharded.run(400);
        assert!(
            (sharded.utility() - mono_utility).abs() <= 1e-6 * mono_utility.abs().max(1.0),
            "sharded {} vs monolithic {mono_utility}",
            sharded.utility()
        );
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(clustered_workload(100, 3, 1).is_err(), "3 does not divide 100");
        assert!(clustered_workload(100, 0, 1).is_err());
        let bad = ClusteredWorkloadConfig {
            cross_traffic: 0.5,
            backbone_links: 0,
            ..ClusteredWorkloadConfig::default()
        };
        assert!(bad.generate().is_err());
    }
}
