//! Minimal terminal rendering for experiment output: sparklines and
//! multi-series ASCII charts, so the figure binaries can *show* the curves
//! they regenerate — plus the phase-profile panel that turns a
//! [`ProfileSnapshot`] into a self-time bar table.

use lla_telemetry::{Diagnosis, Event, HealthSnapshot, ProfileSnapshot, TelemetryCollector};

/// Unicode block characters from low to high.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Downsamples `series` to `width` buckets by averaging.
fn downsample(series: &[f64], width: usize) -> Vec<f64> {
    if series.is_empty() || width == 0 {
        return Vec::new();
    }
    let width = width.min(series.len());
    (0..width)
        .map(|b| {
            let lo = b * series.len() / width;
            let hi = (((b + 1) * series.len()) / width).max(lo + 1);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Renders a series as a one-line unicode sparkline of at most `width`
/// characters (averaged buckets). Empty input renders as an empty string.
///
/// # Example
/// ```
/// use lla_bench::render::sparkline;
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
/// assert_eq!(s.chars().count(), 4);
/// ```
pub fn sparkline(series: &[f64], width: usize) -> String {
    let buckets = downsample(series, width);
    if buckets.is_empty() {
        return String::new();
    }
    let min = buckets.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = buckets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    buckets
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * (BLOCKS.len() - 1) as f64).round() as usize;
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

/// Renders labelled series as sparklines with shared scaling context:
/// one line per series, `label  min..max  sparkline`.
pub fn spark_table(series: &[(&str, &[f64])], width: usize) -> String {
    let label_width = series.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, data) in series {
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "{label:>label_width$}  [{min:>9.2} .. {max:>9.2}]  {}\n",
            sparkline(data, width)
        ));
    }
    out
}

/// Renders a one-screen health dashboard: the [`HealthSnapshot`]'s
/// human-readable block, a per-resource utilization bar chart, and a
/// utility sparkline when a history is available.
pub fn dashboard(health: &HealthSnapshot, utilities: &[f64], width: usize) -> String {
    dashboard_with_diagnosis(health, utilities, None, width)
}

/// [`dashboard`] plus an optional convergence [`Diagnosis`] block: the
/// classifier verdict, its confidence, and the per-resource evidence the
/// diagnostics engine collected over its sample window.
pub fn dashboard_with_diagnosis(
    health: &HealthSnapshot,
    utilities: &[f64],
    diagnosis: Option<&Diagnosis>,
    width: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&health.to_string());
    if !health.resources.is_empty() {
        out.push_str("\nutilization\n");
        let label_width =
            health.resources.iter().map(|r| r.name.chars().count()).max().unwrap_or(0);
        let bar_width = width.saturating_sub(label_width + 12).max(8);
        for r in &health.resources {
            let f = r.utilization_factor();
            let filled = if f.is_finite() {
                ((f.min(1.0)) * bar_width as f64).round() as usize
            } else {
                bar_width
            };
            let filled = filled.min(bar_width);
            let bar = format!("{}{}", "█".repeat(filled), "·".repeat(bar_width - filled));
            out.push_str(&format!("{:>label_width$}  {bar} {:6.1}%\n", r.name, f * 100.0));
        }
    }
    if !utilities.is_empty() {
        out.push_str("\nutility\n");
        out.push_str(&spark_table(&[("U", utilities)], width.saturating_sub(30).max(10)));
    }
    if let Some(diagnosis) = diagnosis {
        out.push('\n');
        out.push_str(&diagnosis.render());
    }
    out
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders a phase-profile panel: the `top` frames by self time as a bar
/// table (share of total root wall time), with full `;`-joined stack
/// paths, call counts, and adaptive time units. Empty snapshots render a
/// one-line placeholder so callers can print unconditionally.
pub fn profile_panel(profile: &ProfileSnapshot, top: usize, width: usize) -> String {
    let total = profile.root_total_ns();
    if profile.is_empty() || total == 0 {
        return String::from("profile: (no samples)\n");
    }
    let frames = profile.top_self(top);
    let mut out = format!("profile (total {}, top {} by self time)\n", fmt_ns(total), frames.len());
    let label_width = frames.iter().map(|f| f.path.chars().count()).max().unwrap_or(0);
    let bar_width = width.saturating_sub(label_width + 30).max(8);
    for f in &frames {
        let share = f.self_ns as f64 / total as f64;
        let filled = ((share.min(1.0)) * bar_width as f64).round() as usize;
        let bar = format!("{}{}", "█".repeat(filled), "·".repeat(bar_width - filled));
        out.push_str(&format!(
            "{:>label_width$}  {bar} {:5.1}%  {:>9}  x{}\n",
            f.path,
            share * 100.0,
            fmt_ns(f.self_ns),
            f.calls
        ));
    }
    out
}

/// [`dashboard_with_diagnosis`] plus a phase-profile panel appended when
/// the snapshot has samples.
pub fn dashboard_with_profile(
    health: &HealthSnapshot,
    utilities: &[f64],
    diagnosis: Option<&Diagnosis>,
    profile: &ProfileSnapshot,
    width: usize,
) -> String {
    let mut out = dashboard_with_diagnosis(health, utilities, diagnosis, width);
    if !profile.is_empty() {
        out.push('\n');
        out.push_str(&profile_panel(profile, 12, width));
    }
    out
}

/// Renders the fleet-telemetry panel: the collector's per-agent metric
/// table followed by the alert timeline, one line per structured alert
/// event. Lines longer than `width` are truncated. An empty timeline
/// renders a one-line placeholder so callers can print unconditionally.
pub fn fleet_panel(view: &TelemetryCollector, alerts: &[Event], width: usize) -> String {
    let mut out = String::from("fleet view\n");
    out.push_str(&view.render_table());
    if alerts.is_empty() {
        out.push_str("alerts: (none)\n");
        return out;
    }
    out.push_str(&format!("alert timeline ({} events)\n", alerts.len()));
    for e in alerts {
        let field = |k: &str| e.field(k).map(ToString::to_string).unwrap_or_default();
        let line = format!(
            "  t={:>6}  {:<24} {:<9} {:<8} delta={} threshold={}",
            e.time,
            field("rule"),
            field("state"),
            field("severity"),
            field("value"),
            field("threshold"),
        );
        out.extend(line.trim_end().chars().take(width.max(16)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_is_monotone_for_ramp() {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let s: Vec<char> = sparkline(&data, 8).chars().collect();
        assert_eq!(s.len(), 8);
        for w in s.windows(2) {
            assert!(
                BLOCKS.iter().position(|&b| b == w[0]) <= BLOCKS.iter().position(|&b| b == w[1]),
                "ramp sparkline must be non-decreasing: {s:?}"
            );
        }
        assert_eq!(*s.first().unwrap(), BLOCKS[0]);
        assert_eq!(*s.last().unwrap(), BLOCKS[7]);
    }

    #[test]
    fn sparkline_handles_edge_cases() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[5.0], 10).chars().count(), 1);
        // Constant series does not divide by zero.
        let flat = sparkline(&[3.0; 20], 5);
        assert_eq!(flat.chars().count(), 5);
    }

    #[test]
    fn sparkline_width_caps_output() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        assert_eq!(sparkline(&data, 40).chars().count(), 40);
    }

    #[test]
    fn dashboard_renders_health_bars_and_utility() {
        use lla_telemetry::ResourceHealth;
        let health = HealthSnapshot {
            converged: true,
            feasible: true,
            iteration: 42,
            utility: 123.4,
            max_stationarity_residual: 1e-7,
            max_resource_violation: 0.0,
            max_path_violation: 0.0,
            max_complementary_slackness: 1e-8,
            worst_violation_factor: 0.9,
            resources: vec![
                ResourceHealth { name: "cpu0".into(), price: 2.0, usage: 0.45, availability: 0.9 },
                ResourceHealth { name: "cpu1".into(), price: 0.0, usage: 0.1, availability: 1.0 },
            ],
            shed_count: 0,
            membership_changes: 0,
            failovers: 0,
        };
        let out = dashboard(&health, &[1.0, 2.0, 3.0, 4.0], 60);
        assert!(out.contains("cpu0"), "missing resource bar:\n{out}");
        assert!(out.contains("50.0%"), "cpu0 runs at 50% utilization:\n{out}");
        assert!(out.contains("utility"), "missing utility section:\n{out}");
    }

    #[test]
    fn dashboard_with_diagnosis_appends_verdict_block() {
        use lla_telemetry::{DiagSample, DiagnosticsEngine};
        let health = HealthSnapshot {
            converged: true,
            feasible: true,
            iteration: 7,
            utility: 50.0,
            max_stationarity_residual: 1e-7,
            max_resource_violation: 0.0,
            max_path_violation: 0.0,
            max_complementary_slackness: 1e-8,
            worst_violation_factor: 0.8,
            resources: vec![],
            shed_count: 0,
            membership_changes: 0,
            failovers: 0,
        };
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            eng.push(DiagSample {
                iteration: i,
                utility: 50.0,
                worst_violation_factor: 0.8,
                gamma_doublings: 0,
                max_rel_price_step: 1e-9,
                frozen_agents: 0,
                prices: vec![1.0],
            });
        }
        let d = eng.diagnose();
        let out = dashboard_with_diagnosis(&health, &[1.0, 2.0], Some(&d), 60);
        assert!(out.contains("diagnosis: converging"), "missing diagnosis block:\n{out}");
        // The plain dashboard is the prefix of the diagnosed one.
        assert!(out.starts_with(&dashboard(&health, &[1.0, 2.0], 60)));
    }

    #[test]
    fn profile_panel_lists_top_frames_with_shares() {
        use lla_telemetry::Profiler;
        let prof = Profiler::recording();
        {
            let _outer = prof.scope("round");
            for _ in 0..3 {
                let _inner = prof.scope("allocate");
                std::hint::black_box(0u64);
            }
        }
        let snap = prof.snapshot();
        let panel = profile_panel(&snap, 8, 80);
        assert!(panel.starts_with("profile (total "), "missing header:\n{panel}");
        assert!(panel.contains("round;allocate"), "missing child path:\n{panel}");
        assert!(panel.contains("x3"), "missing call count:\n{panel}");
    }

    #[test]
    fn profile_panel_handles_empty_snapshot() {
        use lla_telemetry::Profiler;
        let snap = Profiler::disabled().snapshot();
        assert_eq!(profile_panel(&snap, 8, 80), "profile: (no samples)\n");
    }

    #[test]
    fn dashboard_with_profile_appends_panel() {
        use lla_telemetry::Profiler;
        let health = HealthSnapshot {
            converged: true,
            feasible: true,
            iteration: 1,
            utility: 1.0,
            max_stationarity_residual: 0.0,
            max_resource_violation: 0.0,
            max_path_violation: 0.0,
            max_complementary_slackness: 0.0,
            worst_violation_factor: 0.5,
            resources: vec![],
            shed_count: 0,
            membership_changes: 0,
            failovers: 0,
        };
        let prof = Profiler::recording();
        {
            let _g = prof.scope("step");
        }
        let out = dashboard_with_profile(&health, &[], None, &prof.snapshot(), 60);
        assert!(out.contains("profile (total "), "missing profile panel:\n{out}");
        // An empty snapshot leaves the dashboard untouched.
        let plain =
            dashboard_with_profile(&health, &[], None, &Profiler::disabled().snapshot(), 60);
        assert_eq!(plain, dashboard_with_diagnosis(&health, &[], None, 60));
    }

    #[test]
    fn spark_table_includes_ranges() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let table = spark_table(&[("alpha", &a), ("b", &b)], 10);
        assert!(table.contains("alpha"));
        assert!(table.contains("1.00"));
        assert!(table.contains("20.00"));
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn fleet_panel_shows_table_and_alert_timeline() {
        use lla_telemetry::{MetricDef, TelemetryReport};
        let dict = [MetricDef { name: "ticks", help: "ticks" }];
        let mut view = TelemetryCollector::new(&dict);
        view.ingest(&TelemetryReport {
            agent: "controller[0]".into(),
            seq: 1,
            watermark: 10.0,
            deltas: vec![(0, 4)],
        });
        let empty = fleet_panel(&view, &[], 80);
        assert!(empty.contains("controller[0]"), "missing agent row:\n{empty}");
        assert!(empty.contains("alerts: (none)"));

        let alerts = [Event::new(39.0, "alert")
            .with("rule", "fleet-overload")
            .with("state", "firing")
            .with("severity", "critical")
            .with("value", 7u64)
            .with("threshold", 0u64)];
        let panel = fleet_panel(&view, &alerts, 80);
        assert!(panel.contains("alert timeline (1 events)"), "{panel}");
        assert!(panel.contains("t=    39  fleet-overload"), "{panel}");
        assert!(panel.contains("firing"));
        // Narrow widths truncate the line instead of wrapping.
        let narrow = fleet_panel(&view, &alerts, 20);
        let line = narrow.lines().last().unwrap();
        assert!(line.chars().count() <= 20, "{line:?}");
    }
}
