//! Corruption sweep: adversarial wire-level noise vs the validated
//! codec, A/B against a clean wire-mode run.
//!
//! Each arm runs the same comfortably schedulable deployment in wire
//! mode — every delivery encoded to a length-prefixed, CRC-checksummed
//! frame and re-decoded — under a sustained seeded corruption rate. The
//! corruptor flips bits, truncates frames, and fuzzes payload fields
//! *with a fixed checksum* (an in-path attacker, not line noise), so a
//! small fraction of forgeries decode clean and must be absorbed by the
//! dual dynamics rather than the codec.
//!
//! Invariants checked per arm, machine-verifiable from the emitted CSV:
//!
//! 1. **Accounting** — `rejected + forged-deliveries == corrupted`:
//!    every corrupted frame is either refused by the decode → validate
//!    pipeline or decoded bit-clean; nothing is silently lost.
//! 2. **No poisoning** — every price `μ_r` stays finite; a NaN or
//!    infinity in [`PriceState`](lla_core::PriceState) would mean a
//!    malformed value crossed the guardrails.
//! 3. **Re-convergence** — at every rate at or below
//!    [`RECONVERGENCE_RATE_CEILING`] the tail diagnostic verdict is
//!    `converging` and the allocation is feasible, despite the sustained
//!    corruption. Higher rates are reported but not required to settle:
//!    with enough forged-but-valid frames delivered per round, recovery
//!    is the supervisor's job (quarantine), not the codec's.

use crate::Series;
use lla_core::{Problem, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId};
use lla_dist::{DistConfig, DistributedLla};
use lla_telemetry::{DiagnosticsEngine, Verdict};

/// Corruption rates swept, in ascending order. The first entry is the
/// clean baseline.
pub const SWEEP_RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

/// Highest rate at which the unsupervised protocol is required to stay
/// converging and feasible (the paper-level robustness claim).
pub const RECONVERGENCE_RATE_CEILING: f64 = 0.02;

/// Rounds run before the tail diagnostic window is sampled.
pub const SOAK_ROUNDS: usize = 4_000;

/// Samples in the tail diagnostic window.
pub const TAIL_SAMPLES: usize = 16;

/// One corruption rate's outcome.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Corruption probability per frame.
    pub rate: f64,
    /// Frames mutated in flight.
    pub corrupted: u64,
    /// Frames refused by decode → validate.
    pub rejected: u64,
    /// Corrupted frames that decoded clean (checksum-fixed forgeries).
    pub forged_deliveries: u64,
    /// Tail diagnostic verdict.
    pub verdict: Verdict,
    /// Worst constraint-violation factor in the final sample (≤ 1 is
    /// feasible).
    pub violation: f64,
    /// Utility at the final round.
    pub utility: f64,
    /// Whether every price stayed finite.
    pub prices_finite: bool,
}

impl SweepPoint {
    /// Invariant 1: every corrupted frame is accounted for.
    pub fn accounting_holds(&self) -> bool {
        self.rejected + self.forged_deliveries == self.corrupted
    }

    /// Whether this point must re-converge (rate at or below the
    /// ceiling) and does.
    pub fn reconvergence_holds(&self) -> bool {
        self.rate > RECONVERGENCE_RATE_CEILING
            || (self.verdict == Verdict::Converging && self.violation <= 1.05)
    }

    /// All required invariants for this point.
    pub fn passes(&self) -> bool {
        self.accounting_holds() && self.prices_finite && self.reconvergence_holds()
    }
}

/// The full sweep: per-rate outcomes plus the CSV series.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One point per entry of [`SWEEP_RATES`].
    pub points: Vec<SweepPoint>,
    /// Machine-readable series (one row per rate).
    pub series: Series,
}

impl SweepReport {
    /// Whether every point passed its required invariants.
    pub fn all_pass(&self) -> bool {
        self.points.iter().all(SweepPoint::passes)
    }
}

/// Two pipelines over two CPUs with generous deadlines — schedulable
/// with slack, so the clean wire-mode run genuinely converges and every
/// degradation in the sweep is attributable to the injected corruption.
pub fn sweep_problem() -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for (i, critical) in [(0usize, 40.0), (1usize, 60.0)] {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).expect("static workload");
        b.critical_time(critical);
        tasks.push(b.build(TaskId::new(i)).expect("static workload"));
    }
    Problem::new(resources, tasks).expect("static workload")
}

/// Runs one arm at the given sustained corruption rate.
pub fn run_arm(rate: f64, seed: u64) -> SweepPoint {
    let config = DistConfig { seed, wire_mode: true, corruption: rate, ..DistConfig::default() };
    let mut dist = DistributedLla::new(sweep_problem(), config);
    dist.run_rounds(SOAK_ROUNDS);
    let mut tail = DiagnosticsEngine::new();
    for _ in 0..TAIL_SAMPLES {
        dist.run_rounds(1);
        tail.push(dist.diag_sample());
    }
    let diag = tail.diagnose();
    let sample = dist.diag_sample();
    SweepPoint {
        rate,
        corrupted: dist.frames_corrupted(),
        rejected: dist.frames_rejected(),
        forged_deliveries: dist.corrupted_delivered(),
        verdict: diag.verdict,
        violation: sample.worst_violation_factor,
        utility: dist.utility(),
        prices_finite: sample.prices.iter().all(|p| p.is_finite()),
    }
}

/// Runs the whole sweep with a fixed seed per rate (deterministic; the
/// CSV is byte-stable across runs).
pub fn run_sweep(seed: u64) -> SweepReport {
    let mut series = Series::new(&[
        "rate",
        "corrupted",
        "rejected",
        "forged_deliveries",
        "converging",
        "violation",
        "utility",
        "prices_finite",
    ]);
    let points: Vec<SweepPoint> = SWEEP_RATES.iter().map(|&rate| run_arm(rate, seed)).collect();
    for p in &points {
        series.push(vec![
            p.rate,
            p.corrupted as f64,
            p.rejected as f64,
            p.forged_deliveries as f64,
            f64::from(p.verdict == Verdict::Converging),
            p.violation,
            p.utility,
            f64::from(p.prices_finite),
        ]);
    }
    SweepReport { points, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_arm_converges_with_zero_corruption() {
        let p = run_arm(0.0, 7);
        assert_eq!(p.corrupted, 0);
        assert_eq!(p.rejected, 0);
        assert_eq!(p.forged_deliveries, 0);
        assert!(p.passes(), "{p:?}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_sweep(7);
        let b = run_sweep(7);
        assert_eq!(a.series.to_csv(), b.series.to_csv());
    }
}
