//! Supervised chaos soak: closed-loop self-healing vs shedding-only.
//!
//! Two failure scenarios where PR 4's shedding-only governor cannot
//! recover, run twice each — once with just the overload monitor (the
//! pre-supervisor status quo) and once under the
//! [`SupervisorEngine`](lla_dist::SupervisorEngine):
//!
//! 1. **Gamma thrash** — a hard-deadline service workload near (but
//!    under) congestion, driven by an over-aggressive sign-adaptive
//!    step policy (initial 4, growth factor 8, cap 2048). The step
//!    sizes grow and reset forever and utility rings, but the system is
//!    *feasible*: there is no sustained overload, and every task is
//!    inelastic anyway, so the shedding-only arm has no lever at all.
//!    The supervisor broadcasts a gamma-calm (reset + growth clamp) and
//!    the run settles.
//! 2. **Inelastic overload** — a service workload whose tasks all carry
//!    hard deadlines (smooth-inelastic utilities). Two heavy joins push
//!    demand past capacity; shedding cannot touch inelastic tasks
//!    ([`select_victim`](lla_core::select_victim) returns `None`), so
//!    the shedding-only arm diverges forever. The supervisor provisions
//!    elastic replicas on the priciest saturated resource and the run
//!    becomes feasible again.
//!
//! Both arms of both scenarios run the same seeded lossy network, the
//! same join script, and the same diagnostic cadence, so the emitted
//! `supervised_soak.csv` is byte-deterministic and the comparison is
//! apples-to-apples.

use crate::Series;
use lla_core::{
    select_victim, IterationReport, OverloadConfig, OverloadMonitor, ResourceId, ResourceKind,
    StepSizePolicy, TaskBuilder, UtilityFn,
};
use lla_core::{Problem, Resource};
use lla_dist::{
    DistConfig, DistributedLla, NetworkModel, Remediation, SupervisorConfig, SupervisorEngine,
};
use lla_telemetry::{DiagnosticsEngine, Verdict};

/// Supervision checks per soak stage (×
/// [`CHECK_INTERVAL_ROUNDS`](lla_dist::supervisor::CHECK_INTERVAL_ROUNDS)
/// rounds each).
const CHECKS_PER_STAGE: usize = 120;

/// Checks counted into the tail-utility mean (the "end-to-end" figure).
const TAIL_CHECKS: usize = 20;

/// Message loss probability on every link (the chaos flavor both arms
/// share).
const LOSS: f64 = 0.05;

/// One arm (supervised or shedding-only) of one scenario.
#[derive(Debug, Clone)]
pub struct ArmOutcome {
    /// Final diagnostic verdict over the arm's last window.
    pub verdict: Verdict,
    /// Utility at the final check.
    pub final_utility: f64,
    /// Mean utility over the last [`TAIL_CHECKS`] checks.
    pub tail_utility: f64,
    /// Remediations the supervisor applied (empty for shedding-only).
    pub remediations: Vec<Remediation>,
    /// Tasks the shedding-only monitor evicted (empty when supervised).
    pub sheds: usize,
    /// Total replicas across resources at the end of the run.
    pub total_replicas: u32,
}

/// One scenario's A/B result.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Scenario name (`gamma-thrash` or `inelastic-overload`).
    pub scenario: &'static str,
    /// The closed-loop arm.
    pub supervised: ArmOutcome,
    /// The status-quo arm (overload monitor + shedding only).
    pub shedding_only: ArmOutcome,
}

impl Comparison {
    /// The headline claim: the supervised arm ends converging with at
    /// least the shedding-only arm's end-to-end utility.
    pub fn supervised_wins(&self) -> bool {
        self.supervised.verdict == Verdict::Converging
            && self.shedding_only.verdict != Verdict::Converging
            && self.supervised.tail_utility >= self.shedding_only.tail_utility
    }
}

/// The full soak report.
#[derive(Debug, Clone)]
pub struct SupervisedSoakReport {
    /// Per-scenario A/B results.
    pub comparisons: Vec<Comparison>,
    /// Per-check samples of both arms of both scenarios
    /// (`supervised_soak.csv`; byte-deterministic for a fixed seed).
    pub series: Series,
}

/// Numeric verdict code for the CSV (stable across versions).
fn verdict_code(v: Verdict) -> f64 {
    match v {
        Verdict::Converging => 0.0,
        Verdict::Oscillating => 1.0,
        Verdict::GammaThrash => 2.0,
        Verdict::Diverging => 3.0,
        Verdict::Stalled => 4.0,
    }
}

/// A hard-deadline service task: one subtask on `resource`, demand
/// `exec` ms, deadline 50 ms, smooth-inelastic utility — shedding will
/// never evict it.
fn inelastic_task(idx: usize, resource: usize, exec: f64) -> TaskBuilder {
    let mut b = TaskBuilder::new(format!("svc-{idx}"));
    b.subtask("s", ResourceId::new(resource), exec);
    b.critical_time(50.0).utility(UtilityFn::smooth_inelastic(100.0, 50.0, 8.0));
    b
}

/// A one-resource problem hosting three hard-deadline services of
/// `exec` ms demand each.
fn inelastic_problem(exec: f64) -> Problem {
    let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0)];
    let tasks = (0..3)
        .map(|i| {
            inelastic_task(i, 0, exec).build(lla_core::TaskId::new(i)).expect("static workload")
        })
        .collect();
    Problem::new(resources, tasks).expect("static workload")
}

/// The thrash scenario's problem: feasible but close enough to
/// congestion that an over-aggressive step policy rings forever.
fn thrash_problem() -> Problem {
    inelastic_problem(10.0)
}

/// The overload scenario's starting problem: 60% load, headroom for the
/// two heavy joins to overwhelm.
fn overload_problem() -> Problem {
    inelastic_problem(8.0)
}

/// One scenario script: the deployment, the step policy, and the joins
/// (by check index) both arms must replay identically.
struct Scenario {
    name: &'static str,
    problem: fn() -> Problem,
    policy: StepSizePolicy,
    /// `(check index, builder index)` join events; builders come from
    /// [`Scenario::join_task`].
    joins: Vec<(usize, usize)>,
    join_task: fn(usize) -> TaskBuilder,
    /// Whether the supervised arm may provision/retire replicas.
    elastic: bool,
    seed: u64,
}

fn thrash_scenario() -> Scenario {
    Scenario {
        name: "gamma-thrash",
        problem: thrash_problem,
        // The sign-adaptive heuristic with the growth factor cranked
        // from 2 to 8 and the cap from 64× to 512×: near congestion the
        // steps overshoot, reset on the sign flip, and overshoot again.
        policy: StepSizePolicy::SignAdaptive { initial: 4.0, factor: 8.0, max: 2048.0 },
        joins: Vec::new(),
        join_task: |_| unreachable!("no joins in the thrash scenario"),
        // Capacity is not the problem here; keep the A/B on the calm
        // remediation alone.
        elastic: false,
        seed: 2008,
    }
}

fn overload_scenario() -> Scenario {
    Scenario {
        name: "inelastic-overload",
        problem: overload_problem,
        policy: StepSizePolicy::sign_adaptive(1.0),
        // Two heavy joins early on: 0.6 + 2 × 0.4 ≈ 1.4× capacity.
        joins: vec![(10, 3), (12, 4)],
        join_task: |idx| inelastic_task(idx, 0, 18.0),
        elastic: true,
        seed: 2008,
    }
}

fn build_dist(sc: &Scenario) -> DistributedLla {
    DistributedLla::new(
        (sc.problem)(),
        DistConfig {
            step_policy: sc.policy,
            network: NetworkModel::lossy(0.5, 1.0, LOSS),
            seed: sc.seed,
            ..DistConfig::default()
        },
    )
}

/// Drives one arm through the scenario script. `supervisor: None` is the
/// shedding-only arm: the same overload monitor and diagnostic cadence
/// the supervisor uses internally, but eviction is the only lever.
fn run_arm(
    sc: &Scenario,
    mut supervisor: Option<SupervisorEngine>,
    series: &mut Series,
    scenario_code: f64,
) -> ArmOutcome {
    let mut dist = build_dist(sc);
    let interval = SupervisorConfig::default().check_interval_rounds;
    let mut diag = DiagnosticsEngine::with_window(SupervisorConfig::default().window);
    let mut monitor = OverloadMonitor::new(OverloadConfig {
        violation_threshold: 0.05,
        sustain_iters: 6,
        cooldown_iters: 24,
    });
    let mut sheds = 0usize;
    let arm_code = f64::from(supervisor.is_some());

    for check in 0..CHECKS_PER_STAGE {
        for &(at, idx) in &sc.joins {
            if at == check {
                dist.join_task(&(sc.join_task)(idx)).expect("join script is valid");
                monitor.note_admission();
            }
        }
        dist.run_rounds(interval);
        let verdict;
        match supervisor.as_mut() {
            Some(sup) => {
                sup.check(&mut dist);
                verdict = sup.diagnosis().verdict;
            }
            None => {
                diag.push(dist.diag_sample());
                verdict = diag.diagnose().verdict;
                let lats = dist.allocation();
                let report = IterationReport {
                    iteration: check,
                    utility: dist.utility(),
                    max_resource_violation: dist.problem().max_resource_violation(lats.lats()),
                    max_path_violation: dist.problem().max_path_violation(lats.lats()),
                };
                if monitor.observe(&report) {
                    if let Some(victim) = select_victim(dist.problem(), lats.lats()) {
                        let slot = dist.task_slots()[victim.index()];
                        dist.evict_task(slot).expect("victim is live");
                        monitor.note_eviction();
                        sheds += 1;
                    }
                }
            }
        }
        let remediations =
            supervisor.as_ref().map_or(0, |s| s.actions().len()) as f64 + sheds as f64;
        series.push(vec![
            scenario_code,
            arm_code,
            check as f64,
            dist.rounds() as f64,
            dist.utility(),
            verdict_code(verdict),
            remediations,
            f64::from(total_replicas(&dist)),
        ]);
    }

    let tail: Vec<f64> = (0..TAIL_CHECKS)
        .map(|i| {
            let u = dist.utilities();
            u[u.len() - 1 - i * interval]
        })
        .collect();
    let verdict = match supervisor.as_ref() {
        Some(sup) => sup.diagnosis().verdict,
        None => diag.diagnose().verdict,
    };
    ArmOutcome {
        verdict,
        final_utility: dist.utility(),
        tail_utility: tail.iter().sum::<f64>() / tail.len() as f64,
        remediations: supervisor.map_or_else(Vec::new, |s| s.actions().to_vec()),
        sheds,
        total_replicas: total_replicas(&dist),
    }
}

fn total_replicas(dist: &DistributedLla) -> u32 {
    dist.problem().resources().iter().map(lla_core::Resource::replicas).sum()
}

/// Runs both scenarios, both arms each, and assembles the report.
pub fn run_supervised_soak() -> SupervisedSoakReport {
    let mut series = Series::new(&[
        "scenario",
        "supervised",
        "check",
        "round",
        "utility",
        "verdict",
        "actions",
        "replicas",
    ]);
    let mut comparisons = Vec::new();
    for (code, sc) in [thrash_scenario(), overload_scenario()].into_iter().enumerate() {
        let shedding_only = run_arm(&sc, None, &mut series, code as f64);
        let sup = SupervisorEngine::new(SupervisorConfig {
            elastic: sc.elastic,
            ..SupervisorConfig::default()
        });
        let supervised = run_arm(&sc, Some(sup), &mut series, code as f64);
        comparisons.push(Comparison { scenario: sc.name, supervised, shedding_only });
    }
    SupervisedSoakReport { comparisons, series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_dist::RemediationKind;

    #[test]
    fn supervised_recovers_where_shedding_only_cannot() {
        let report = run_supervised_soak();
        for cmp in &report.comparisons {
            assert!(
                cmp.supervised_wins(),
                "{}: supervised {:?} (tail {:.2}) vs shedding-only {:?} (tail {:.2})",
                cmp.scenario,
                cmp.supervised.verdict,
                cmp.supervised.tail_utility,
                cmp.shedding_only.verdict,
                cmp.shedding_only.tail_utility,
            );
        }
        let thrash = &report.comparisons[0];
        assert!(
            thrash.supervised.remediations.iter().any(|r| r.kind == RemediationKind::GammaCalm),
            "thrash must be remediated by a gamma calm"
        );
        let overload = &report.comparisons[1];
        assert!(
            overload.supervised.remediations.iter().any(|r| r.kind == RemediationKind::Provision),
            "inelastic overload must be remediated by elastic capacity"
        );
        assert_eq!(overload.shedding_only.sheds, 0, "inelastic tasks must never be shed");
        assert!(overload.supervised.total_replicas > 1, "capacity must have grown");
    }

    #[test]
    fn soak_report_is_deterministic() {
        let a = run_supervised_soak();
        let b = run_supervised_soak();
        assert_eq!(a.series.to_csv(), b.series.to_csv());
    }
}
