//! Regenerates **Figure 8**: the prototype experiment with online model
//! error correction (§6).
//!
//! Four tasks (two fast: WCET 5ms @ 40/s, critical time 105ms; two slow:
//! WCET 13ms @ 10/s, critical time 800ms) on three CPUs with lag 5ms and
//! 0.1 share reserved for the garbage collector. Without error correction
//! the optimizer allocates by the worst-case model (paper: fast 0.26,
//! slow 0.19; ours: 0.286/0.164 — the lag model differs slightly). Once
//! correction is enabled it discovers the over-prediction and converges to
//! the minimum sustainable share for the fast tasks (0.2) with the surplus
//! to the slow tasks (0.25).

use lla_bench::run_fig8;
use lla_workloads::PrototypeParams;

fn main() {
    let params = PrototypeParams::default();
    let result = run_fig8(4, 16, 5_000.0);

    println!("=== Figure 8: system experiment with model error correction ===\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "time_s", "fast_share", "slow_share", "e_fast_ms", "e_slow_ms", "utility"
    );
    for row in &result.series.rows {
        println!(
            "{:>8.0} {:>12.3} {:>12.3} {:>12.2} {:>12.2} {:>10.1}",
            row[0] / 1000.0,
            row[1],
            row[2],
            row[3],
            row[4],
            row[5]
        );
    }

    match result.series.write_csv("fig8_error_correction") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }

    let fast_change = (result.fast_after - result.fast_before) / result.fast_before * 100.0;
    let slow_change = (result.slow_after - result.slow_before) / result.slow_before * 100.0;
    println!("\npaper claims (paper values: fast 0.26→0.20 = −23%, slow 0.19→0.25 = +32%):");
    println!(
        "  fast share: {:.3} → {:.3} ({:+.0}%), converges to min share {:.2}: {}",
        result.fast_before,
        result.fast_after,
        fast_change,
        params.fast_min_share(),
        if (result.fast_after - params.fast_min_share()).abs() < 0.01 { "YES" } else { "NO" }
    );
    println!(
        "  slow share: {:.3} → {:.3} ({:+.0}%), receives the surplus (≈0.25): {}",
        result.slow_before,
        result.slow_after,
        slow_change,
        if (result.slow_after - 0.25).abs() < 0.01 { "YES" } else { "NO" }
    );
    println!(
        "  error value fluctuates but stabilizes in mean: final e_fast={:.1}ms e_slow={:.1}ms",
        result.series.rows.last().unwrap()[3],
        result.series.rows.last().unwrap()[4]
    );
}
