//! Regenerates **Figure 6**: convergence as the number of tasks scales
//! (§5.3).
//!
//! The base workload is replicated ×1, ×2, ×4 (3, 6, 12 tasks) as in the
//! paper, then pushed to ×16 and ×64 (48, 192 tasks) to exercise the
//! compiled-plan hot path, with critical times scaled to keep every point
//! schedulable. The paper's claims: convergence speed does not depend on
//! the number of tasks, and the converged utility grows linearly with the
//! task count. The extra wall-clock columns report the per-iteration cost
//! at each scale.

use lla_bench::render::profile_panel;
use lla_bench::{run_fig6_point, run_fig6_profile, Series};

fn main() {
    const BUDGET: usize = 8_000;
    const REPLICATIONS: [usize; 5] = [1, 2, 4, 16, 64];
    println!("=== Figure 6: convergence as tasks scale ===\n");
    println!(
        "{:>7} {:>10} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "tasks", "converged", "iterations", "settle (1%)", "utility", "wall (ms)", "us/iter"
    );

    let mut csv = Series::new(&[
        "tasks",
        "converged",
        "iterations",
        "settling",
        "utility",
        "wall_ms",
        "us_per_iteration",
    ]);
    let mut points = Vec::new();
    for replication in REPLICATIONS {
        let p = run_fig6_point(replication, BUDGET);
        println!(
            "{:>7} {:>10} {:>12} {:>14} {:>14.2} {:>12.2} {:>12.2}",
            p.tasks,
            p.converged,
            p.iterations,
            p.settling.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            p.utility,
            p.wall_ms,
            p.us_per_iteration
        );
        csv.push(vec![
            p.tasks as f64,
            if p.converged { 1.0 } else { 0.0 },
            p.iterations as f64,
            p.settling.map(|s| s as f64).unwrap_or(-1.0),
            p.utility,
            p.wall_ms,
            p.us_per_iteration,
        ]);
        points.push(p);
    }

    match csv.write_csv("fig6_scalability") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }

    // The paper's §5.3 claims only cover its own scales (×1, ×2, ×4); the
    // ×16/×64 points are our hot-path scaling extension and are judged on
    // wall-clock cost, not on the paper's convergence claims.
    let paper_points = &points[..3];
    println!("\npaper claims (over the paper's scales, 3/6/12 tasks):");
    let all_converged = paper_points.iter().all(|p| p.converged);
    println!("  all scales converge: {}", if all_converged { "YES" } else { "NO" });
    // Linear utility growth: utility per task roughly constant. Critical
    // times scale with replication, so compare utility / (tasks × scale).
    let normalized: Vec<f64> = paper_points
        .iter()
        .zip(REPLICATIONS)
        .map(|(p, scale)| p.utility / (p.tasks as f64 * scale as f64))
        .collect();
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - normalized.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  utility grows linearly with tasks: {} (per task-and-scale: {:?}, spread {:.2})",
        if spread.abs() < 1.0 { "YES" } else { "NO" },
        normalized.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>(),
        spread
    );
    println!(
        "  convergence speed vs task count: settling iterations {:?} — grows with the\n\
         \x20   contention level in our reproduction (see EXPERIMENTS.md for the deviation\n\
         \x20   discussion; the paper reports scale-independent convergence)",
        paper_points.iter().map(|p| p.settling).collect::<Vec<_>>()
    );
    println!(
        "\nhot-path extension (48/192 tasks): per-iteration cost {:?} us — contention at\n\
         \x20 these scales exceeds what the base resource pool can settle within the budget;\n\
         \x20 the columns measure the compiled plan's iteration cost, not convergence",
        points[3..]
            .iter()
            .map(|p| (p.us_per_iteration * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Where the iterations go: a profiled re-run of the ×64 point,
    // rendered as the self-time panel (wall-clock, non-deterministic —
    // informational only, never part of the CSV).
    let profile = run_fig6_profile(64, BUDGET);
    println!("\nphase profile of the x64 point:");
    print!("{}", profile_panel(&profile, 10, 100));
}
