//! Regenerates **Figure 6**: convergence as the number of tasks scales
//! (§5.3).
//!
//! The base workload is replicated ×1, ×2, ×4 (3, 6, 12 tasks), with
//! critical times scaled to keep the workload schedulable. The paper's
//! claims: convergence speed does not depend on the number of tasks, and
//! the converged utility grows linearly with the task count.

use lla_bench::{run_fig6_point, Series};

fn main() {
    const BUDGET: usize = 8_000;
    println!("=== Figure 6: convergence as tasks scale ===\n");
    println!(
        "{:>7} {:>10} {:>12} {:>14} {:>14}",
        "tasks", "converged", "iterations", "settle (1%)", "utility"
    );

    let mut csv = Series::new(&["tasks", "converged", "iterations", "settling", "utility"]);
    let mut points = Vec::new();
    for replication in [1usize, 2, 4] {
        let p = run_fig6_point(replication, BUDGET);
        println!(
            "{:>7} {:>10} {:>12} {:>14} {:>14.2}",
            p.tasks,
            p.converged,
            p.iterations,
            p.settling.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            p.utility
        );
        csv.push(vec![
            p.tasks as f64,
            if p.converged { 1.0 } else { 0.0 },
            p.iterations as f64,
            p.settling.map(|s| s as f64).unwrap_or(-1.0),
            p.utility,
        ]);
        points.push(p);
    }

    match csv.write_csv("fig6_scalability") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }

    println!("\npaper claims:");
    let all_converged = points.iter().all(|p| p.converged);
    println!("  all scales converge: {}", if all_converged { "YES" } else { "NO" });
    // Linear utility growth: utility per task roughly constant. Critical
    // times scale with replication, so compare utility / (tasks × scale).
    let normalized: Vec<f64> = points
        .iter()
        .zip([1.0, 2.0, 4.0])
        .map(|(p, scale)| p.utility / (p.tasks as f64 * scale))
        .collect();
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - normalized.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  utility grows linearly with tasks: {} (per task-and-scale: {:?}, spread {:.2})",
        if spread.abs() < 1.0 { "YES" } else { "NO" },
        normalized.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>(),
        spread
    );
    println!(
        "  convergence speed vs task count: settling iterations {:?} — grows with the\n\
         \x20   contention level in our reproduction (see EXPERIMENTS.md for the deviation\n\
         \x20   discussion; the paper reports scale-independent convergence)",
        points.iter().map(|p| p.settling).collect::<Vec<_>>()
    );
}
