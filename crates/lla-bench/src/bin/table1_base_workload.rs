//! Regenerates **Table 1**: task parameters and optimization results on
//! the 3-task base workload (§5.1–§5.2).
//!
//! The paper reports, per subtask, the latency assigned by LLA at the
//! optimal utility, and per task the critical-path latency against the
//! critical time — with every critical path within 1% below its critical
//! time and all resources close to congestion.

use lla_bench::{run_table1, Series};
use lla_core::Aggregation;

fn main() {
    let result = run_table1(Aggregation::PathWeighted, 3_000);

    println!("=== Table 1: base workload optimization results ===");
    println!(
        "converged: {} after {} iterations, total utility {:.2}\n",
        result.converged, result.iterations, result.utility
    );

    let mut csv = Series::new(&["task", "subtask", "resource", "exec_time_ms", "latency_ms"]);
    let problem_tasks = lla_workloads::base_workload().tasks().to_vec();
    for (t, task) in problem_tasks.iter().enumerate() {
        print!("{:>14}", task.name());
        for s in task.subtasks() {
            print!("  T{}{}", t + 1, s.id().index() + 1);
        }
        println!();
        print!("{:>14}", "resource");
        for s in task.subtasks() {
            print!("  {:>4}", s.resource().index());
        }
        println!();
        print!("{:>14}", "exec time");
        for s in task.subtasks() {
            print!("  {:>4.1}", s.exec_time());
        }
        println!();
        print!("{:>14}", "latency");
        for (i, s) in task.subtasks().iter().enumerate() {
            let lat = result.allocation.latency(t, i);
            print!("  {:>4.1}", lat);
            csv.push(vec![t as f64, i as f64, s.resource().index() as f64, s.exec_time(), lat]);
        }
        println!();
        let (cp, c) = result.critical[t];
        println!(
            "{:>14}  critical path {:.1} / critical time {:.0}  ({:.2}% below)\n",
            "",
            cp,
            c,
            (1.0 - cp / c) * 100.0
        );
    }

    println!("per-resource share sums (availability 1.0):");
    for (r, u) in result.usage.iter().enumerate() {
        println!("  R{r}: {u:.3}");
    }

    match csv.write_csv("table1") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncsv not written: {e}"),
    }

    println!("\npaper claims reproduced:");
    for (t, &(cp, c)) in result.critical.iter().enumerate() {
        // Within the optimizer's 0.1% feasibility tolerance of the
        // boundary, and no more than 1% below it (the paper's claim).
        let ok = cp <= c * 1.001 && cp >= 0.99 * c;
        println!(
            "  task {}: critical path within 1% of critical time: {} ({cp:.2} vs {c})",
            t + 1,
            if ok { "YES" } else { "NO" }
        );
    }
    let near = result.usage.iter().filter(|&&u| u > 0.95).count();
    println!("  resources close to congestion: {near}/{} above 0.95 usage", result.usage.len());
}
