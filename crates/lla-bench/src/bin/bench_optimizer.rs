//! Optimizer scaling benchmark: per-iteration cost of the compiled-plan
//! hot path vs the naive nested-`Vec` round, on `large_scale_workload` at
//! 100, 1 000 and 10 000 tasks — plus the cost of the telemetry layer
//! (disabled registry vs live counters/gauges/histograms vs recording
//! causal spans) at each point.
//!
//! Progress goes to **stderr** through the telemetry event layer; stdout
//! carries only the machine-readable JSON document, which is also written
//! to `BENCH_optimizer.json` in the working directory (run from the
//! repository root). Build with `--release`; with `--features parallel`
//! the plan side additionally fans the per-task allocation out across
//! worker threads (bit-identical results).
//!
//! ```text
//! cargo run --release -p lla-bench --bin bench_optimizer
//! cargo run --release -p lla-bench --features parallel --bin bench_optimizer
//! ```

use lla_bench::{bench_optimizer_point, OptimizerBenchPoint};
use lla_telemetry::{Event, EventLog};
use std::fmt::Write as _;
use std::time::Instant;

/// `(tasks, warmup iterations, timed iterations)` — iteration counts taper
/// with scale so the whole sweep stays under a minute in release mode.
const POINTS: [(usize, usize, usize); 3] = [(100, 50, 2_000), (1_000, 20, 200), (10_000, 3, 30)];

const SEED: u64 = 42;

fn main() {
    let parallel = cfg!(feature = "parallel");
    let progress = EventLog::recording().with_stderr_echo();
    let start = Instant::now();
    progress.emit(
        Event::new(0.0, "note")
            .with("msg", "optimizer iteration cost: naive vs compiled plan vs telemetry")
            .with("parallel", parallel),
    );

    let mut results: Vec<OptimizerBenchPoint> = Vec::new();
    for (tasks, warmup, iters) in POINTS {
        let p = bench_optimizer_point(tasks, SEED, warmup, iters);
        progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "bench_point")
                .with("tasks", p.tasks)
                .with("subtasks", p.subtasks)
                .with("naive_ns_per_iter", p.naive_ns_per_iter)
                .with("plan_ns_per_iter", p.plan_ns_per_iter)
                .with("speedup", p.speedup())
                .with("telemetry_disabled_overhead", p.telemetry_disabled_overhead())
                .with("telemetry_enabled_overhead", p.telemetry_enabled_overhead())
                .with("span_enabled_overhead", p.span_enabled_overhead()),
        );
        results.push(p);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"optimizer_plan\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"parallel_feature\": {parallel},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tasks\": {}, \"subtasks\": {}, \"naive_ns_per_iter\": {:.1}, \
             \"plan_ns_per_iter\": {:.1}, \"speedup\": {:.3}, \
             \"telemetry_disabled_ns_per_iter\": {:.1}, \
             \"telemetry_enabled_ns_per_iter\": {:.1}, \
             \"span_enabled_ns_per_iter\": {:.1}, \
             \"telemetry_disabled_overhead\": {:.4}, \
             \"telemetry_enabled_overhead\": {:.4}, \
             \"span_enabled_overhead\": {:.4}}}{comma}",
            p.tasks,
            p.subtasks,
            p.naive_ns_per_iter,
            p.plan_ns_per_iter,
            p.speedup(),
            p.telemetry_disabled_ns_per_iter,
            p.telemetry_enabled_ns_per_iter,
            p.span_enabled_ns_per_iter,
            p.telemetry_disabled_overhead(),
            p.telemetry_enabled_overhead(),
            p.span_enabled_overhead()
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    // Machine output: stdout carries exactly the JSON document.
    print!("{json}");
    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", "wrote BENCH_optimizer.json"),
        ),
        Err(e) => progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", format!("BENCH_optimizer.json not written: {e}")),
        ),
    }
}
