//! Optimizer scaling benchmark: per-iteration cost of the compiled-plan
//! hot path vs the naive nested-`Vec` round on `large_scale_workload` at
//! 100 / 1 000 / 10 000 tasks (plus telemetry-layer cost at each point),
//! and the **sharded scaling sweep** on `clustered_workload` at 100 000
//! and 1 000 000 tasks: monolithic vs [`ShardedOptimizer`] rounds with
//! per-shard cost decomposition, rounds-to-converge, and the modeled
//! parallel efficiency at one core per shard.
//!
//! Progress goes to **stderr** through the telemetry event layer; stdout
//! carries only the machine-readable JSON document, which is also written
//! to `BENCH_optimizer.json` in the working directory (run from the
//! repository root). The document holds one *variant* object per build
//! flavor (`parallel_feature` false/true); each run refreshes its own
//! variant fragment under `results/` and re-merges the document, so
//! running both commands yields both axes:
//!
//! ```text
//! cargo run --release -p lla-bench --bin bench_optimizer
//! cargo run --release -p lla-bench --features parallel --bin bench_optimizer
//! ```
//!
//! `bench_optimizer -- --smoke` instead runs the CI regression guard: a
//! small sharded point (4 shards × 2 500 tasks) that fails (exit 1) if
//! the sharded round's sequential per-iteration cost exceeds the
//! monolithic step by more than 25%.
//!
//! Every run (full and smoke) also appends one timestamped record to
//! `results/bench_history.jsonl`; `bench_compare` diffs the newest
//! record against `results/bench_baseline.json` and exits nonzero on
//! regression (see `lla_bench::perf` for the tolerance policy).
//!
//! [`ShardedOptimizer`]: lla_core::ShardedOptimizer
use lla_bench::perf::{self, BenchRecord};
use lla_bench::{
    bench_optimizer_point, bench_sharded_sweep, OptimizerBenchPoint, ShardedBenchPoint,
    ShardedSweepConfig,
};
use lla_telemetry::{Event, EventLog};
use std::fmt::Write as _;
use std::time::Instant;

/// `(tasks, warmup iterations, timed iterations, convergence budget)` —
/// iteration counts taper with scale so the flat sweep stays fast in
/// release mode.
const POINTS: [(usize, usize, usize, usize); 3] =
    [(100, 50, 2_000, 5_000), (1_000, 20, 200, 5_000), (10_000, 3, 30, 3_000)];

/// Sharded sweep geometry. Shard counts divide the cluster count so
/// contiguous shards align with cluster boundaries and the problem is
/// identical across shard counts; warmup/iters/reps taper with scale.
struct SweepGeometry {
    tasks: usize,
    clusters: usize,
    shard_counts: &'static [usize],
    warmup: usize,
    iters: usize,
    reps: usize,
    converge_budget: usize,
}

const SHARDED_SWEEPS: [SweepGeometry; 2] = [
    SweepGeometry {
        tasks: 100_000,
        clusters: 8,
        shard_counts: &[1, 2, 4, 8],
        warmup: 2,
        iters: 10,
        reps: 2,
        converge_budget: 3_000,
    },
    SweepGeometry {
        tasks: 1_000_000,
        clusters: 8,
        shard_counts: &[1, 8],
        warmup: 1,
        iters: 3,
        reps: 1,
        converge_budget: 600,
    },
];

const SEED: u64 = 42;

/// CI guard threshold: sequential sharded overhead over monolithic.
const SMOKE_MAX_OVERHEAD: f64 = 0.25;

fn fmt_rounds(rounds: Option<usize>) -> String {
    rounds.map_or_else(|| "null".to_string(), |r| r.to_string())
}

/// Appends `record` to `results/bench_history.jsonl`, reporting (but not
/// failing on) I/O errors — the benchmark numbers on stdout still stand.
fn append_history(record: &BenchRecord, progress: &EventLog, start: Instant) {
    let path = std::path::Path::new(perf::HISTORY_PATH);
    match record.append_to(path) {
        Ok(()) => progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", format!("appended {} record to {}", record.label, perf::HISTORY_PATH)),
        ),
        Err(e) => progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", format!("history not written: {e}")),
        ),
    }
}

fn flat_point_json(p: &OptimizerBenchPoint) -> String {
    format!(
        "{{\"tasks\": {}, \"subtasks\": {}, \"naive_ns_per_iter\": {:.1}, \
         \"plan_ns_per_iter\": {:.1}, \"speedup\": {:.3}, \
         \"rounds_to_converge\": {}, \"converged\": {}, \"max_rounds\": {}, \
         \"telemetry_disabled_ns_per_iter\": {:.1}, \
         \"telemetry_enabled_ns_per_iter\": {:.1}, \
         \"span_enabled_ns_per_iter\": {:.1}, \
         \"profile_disabled_ns_per_iter\": {:.1}, \
         \"telemetry_disabled_overhead\": {:.4}, \
         \"telemetry_enabled_overhead\": {:.4}, \
         \"span_enabled_overhead\": {:.4}, \
         \"profile_disabled_overhead\": {:.4}}}",
        p.tasks,
        p.subtasks,
        p.naive_ns_per_iter,
        p.plan_ns_per_iter,
        p.speedup(),
        fmt_rounds(p.rounds_to_converge),
        p.converged,
        p.max_rounds,
        p.telemetry_disabled_ns_per_iter,
        p.telemetry_enabled_ns_per_iter,
        p.span_enabled_ns_per_iter,
        p.profile_disabled_ns_per_iter,
        p.telemetry_disabled_overhead(),
        p.telemetry_enabled_overhead(),
        p.span_enabled_overhead(),
        p.profile_disabled_overhead()
    )
}

fn sharded_point_json(p: &ShardedBenchPoint) -> String {
    format!(
        "{{\"tasks\": {}, \"subtasks\": {}, \"shards\": {}, \
         \"shared_resources\": {}, \"monolithic_ns_per_iter\": {:.1}, \
         \"sharded_wall_ns_per_iter\": {:.1}, \
         \"critical_path_ns_per_iter\": {:.1}, \
         \"coordinator_ns_per_iter\": {:.1}, \
         \"modeled_speedup\": {:.3}, \"parallel_efficiency\": {:.3}, \
         \"sequential_overhead\": {:.4}, \"rounds_to_converge\": {}, \
         \"converged\": {}, \"max_rounds\": {}}}",
        p.tasks,
        p.subtasks,
        p.shards,
        p.shared_resources,
        p.monolithic_ns_per_iter,
        p.sharded_wall_ns_per_iter,
        p.critical_path_ns_per_iter,
        p.coordinator_ns_per_iter,
        p.modeled_speedup(),
        p.parallel_efficiency(),
        p.sequential_overhead(),
        fmt_rounds(p.rounds_to_converge),
        p.converged,
        p.max_rounds
    )
}

/// Renders one variant object (indented for its slot in the document).
fn variant_json(
    parallel: bool,
    flat: &[OptimizerBenchPoint],
    sharded: &[ShardedBenchPoint],
) -> String {
    let mut v = String::from("    {\n");
    let _ = writeln!(v, "      \"parallel_feature\": {parallel},");
    let _ = writeln!(v, "      \"points\": [");
    for (i, p) in flat.iter().enumerate() {
        let comma = if i + 1 < flat.len() { "," } else { "" };
        let _ = writeln!(v, "        {}{comma}", flat_point_json(p));
    }
    let _ = writeln!(v, "      ],");
    let _ = writeln!(v, "      \"sharded_points\": [");
    for (i, p) in sharded.iter().enumerate() {
        let comma = if i + 1 < sharded.len() { "," } else { "" };
        let _ = writeln!(v, "        {}{comma}", sharded_point_json(p));
    }
    let _ = writeln!(v, "      ]");
    v.push_str("    }");
    v
}

/// Merges whichever variant fragments exist (sequential first) into the
/// top-level document.
fn merged_document(results_dir: &std::path::Path) -> String {
    let mut variants = Vec::new();
    for name in ["bench_optimizer_variant_seq.json", "bench_optimizer_variant_par.json"] {
        if let Ok(frag) = std::fs::read_to_string(results_dir.join(name)) {
            variants.push(frag.trim_end().to_string());
        }
    }
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"optimizer_plan\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"variants\": [");
    let _ = writeln!(json, "{}", variants.join(",\n"));
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    json
}

/// The CI regression guard (`--smoke`): 4 shards × 2 500 tasks, fail when
/// the sequential sharded round costs >25% more per iteration than the
/// monolithic step. Also appends a `smoke`-labeled record to the perf
/// history so `bench_compare` can gate on it.
fn run_smoke(progress: &EventLog, start: Instant) -> i32 {
    let points = bench_sharded_sweep(&ShardedSweepConfig {
        num_tasks: 10_000,
        num_clusters: 4,
        shard_counts: vec![4],
        seed: SEED,
        warmup: 2,
        iters: 10,
        reps: 3,
        converge_budget: 2_000,
    });
    let p = &points[0];
    let overhead = p.sequential_overhead();
    let mut record = BenchRecord::now("smoke", cfg!(feature = "parallel"));
    perf::record_sharded_point(&mut record, p, "smoke");
    append_history(&record, progress, start);
    progress.emit(
        Event::new(start.elapsed().as_secs_f64(), "sharded_smoke")
            .with("tasks", p.tasks)
            .with("shards", p.shards)
            .with("monolithic_ns_per_iter", p.monolithic_ns_per_iter)
            .with("sharded_wall_ns_per_iter", p.sharded_wall_ns_per_iter)
            .with("sequential_overhead", overhead)
            .with("limit", SMOKE_MAX_OVERHEAD),
    );
    println!(
        "{{\"benchmark\": \"sharded_smoke\", \"seed\": {SEED}, \"point\": {}, \
         \"overhead_limit\": {SMOKE_MAX_OVERHEAD}, \"pass\": {}}}",
        sharded_point_json(p),
        overhead <= SMOKE_MAX_OVERHEAD
    );
    if overhead > SMOKE_MAX_OVERHEAD {
        progress.emit(Event::new(start.elapsed().as_secs_f64(), "note").with(
            "msg",
            format!("FAIL: sharded overhead {overhead:.4} exceeds {SMOKE_MAX_OVERHEAD}"),
        ));
        return 1;
    }
    0
}

fn main() {
    let parallel = cfg!(feature = "parallel");
    let progress = EventLog::recording().with_stderr_echo();
    let start = Instant::now();

    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(run_smoke(&progress, start));
    }

    progress.emit(
        Event::new(0.0, "note")
            .with("msg", "optimizer iteration cost: naive vs plan vs telemetry vs sharded")
            .with("parallel", parallel),
    );

    let mut flat: Vec<OptimizerBenchPoint> = Vec::new();
    for (tasks, warmup, iters, budget) in POINTS {
        let p = bench_optimizer_point(tasks, SEED, warmup, iters, budget);
        progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "bench_point")
                .with("tasks", p.tasks)
                .with("subtasks", p.subtasks)
                .with("naive_ns_per_iter", p.naive_ns_per_iter)
                .with("plan_ns_per_iter", p.plan_ns_per_iter)
                .with("speedup", p.speedup())
                .with("rounds_to_converge", fmt_rounds(p.rounds_to_converge))
                .with("telemetry_disabled_overhead", p.telemetry_disabled_overhead())
                .with("telemetry_enabled_overhead", p.telemetry_enabled_overhead())
                .with("span_enabled_overhead", p.span_enabled_overhead()),
        );
        flat.push(p);
    }

    let mut sharded: Vec<ShardedBenchPoint> = Vec::new();
    for g in SHARDED_SWEEPS {
        let sweep = ShardedSweepConfig {
            num_tasks: g.tasks,
            num_clusters: g.clusters,
            shard_counts: g.shard_counts.to_vec(),
            seed: SEED,
            warmup: g.warmup,
            iters: g.iters,
            reps: g.reps,
            converge_budget: g.converge_budget,
        };
        for p in bench_sharded_sweep(&sweep) {
            progress.emit(
                Event::new(start.elapsed().as_secs_f64(), "sharded_point")
                    .with("tasks", p.tasks)
                    .with("shards", p.shards)
                    .with("monolithic_ns_per_iter", p.monolithic_ns_per_iter)
                    .with("critical_path_ns_per_iter", p.critical_path_ns_per_iter)
                    .with("parallel_efficiency", p.parallel_efficiency())
                    .with("rounds_to_converge", fmt_rounds(p.rounds_to_converge)),
            );
            sharded.push(p);
        }
    }

    let mut record = BenchRecord::now("full", parallel);
    for p in &flat {
        perf::record_flat_point(&mut record, p);
    }
    for p in &sharded {
        perf::record_sharded_point(&mut record, p, &format!("sharded.{}.{}", p.tasks, p.shards));
    }
    append_history(&record, &progress, start);

    // Refresh this build flavor's fragment, then merge whatever fragments
    // exist into the document (the other flavor's numbers survive).
    let results_dir = std::path::Path::new("results");
    let fragment = variant_json(parallel, &flat, &sharded);
    let frag_name = if parallel {
        "bench_optimizer_variant_par.json"
    } else {
        "bench_optimizer_variant_seq.json"
    };
    if let Err(e) = std::fs::create_dir_all(results_dir)
        .and_then(|()| std::fs::write(results_dir.join(frag_name), &fragment))
    {
        progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", format!("variant fragment not written: {e}")),
        );
    }
    let json = merged_document(results_dir);

    // Machine output: stdout carries exactly the JSON document.
    print!("{json}");
    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", "wrote BENCH_optimizer.json"),
        ),
        Err(e) => progress.emit(
            Event::new(start.elapsed().as_secs_f64(), "note")
                .with("msg", format!("BENCH_optimizer.json not written: {e}")),
        ),
    }
}
