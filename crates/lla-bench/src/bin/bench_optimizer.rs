//! Optimizer scaling benchmark: per-iteration cost of the compiled-plan
//! hot path vs the naive nested-`Vec` round, on `large_scale_workload` at
//! 100, 1 000 and 10 000 tasks.
//!
//! Writes `BENCH_optimizer.json` in the working directory (run from the
//! repository root). Build with `--release`; with
//! `--features parallel` the plan side additionally fans the per-task
//! allocation out across worker threads (bit-identical results).
//!
//! ```text
//! cargo run --release -p lla-bench --bin bench_optimizer
//! cargo run --release -p lla-bench --features parallel --bin bench_optimizer
//! ```

use lla_bench::{bench_optimizer_point, OptimizerBenchPoint};
use std::fmt::Write as _;

/// `(tasks, warmup iterations, timed iterations)` — iteration counts taper
/// with scale so the whole sweep stays under a minute in release mode.
const POINTS: [(usize, usize, usize); 3] = [(100, 50, 400), (1_000, 10, 100), (10_000, 2, 12)];

const SEED: u64 = 42;

fn main() {
    let parallel = cfg!(feature = "parallel");
    println!("=== Optimizer iteration cost: naive vs compiled plan ===");
    println!("parallel feature: {parallel}\n");
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>10}",
        "tasks", "subtasks", "naive ns/iter", "plan ns/iter", "speedup"
    );

    let mut results: Vec<OptimizerBenchPoint> = Vec::new();
    for (tasks, warmup, iters) in POINTS {
        let p = bench_optimizer_point(tasks, SEED, warmup, iters);
        println!(
            "{:>8} {:>10} {:>16.0} {:>16.0} {:>9.2}x",
            p.tasks,
            p.subtasks,
            p.naive_ns_per_iter,
            p.plan_ns_per_iter,
            p.speedup()
        );
        results.push(p);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"optimizer_plan\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"parallel_feature\": {parallel},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tasks\": {}, \"subtasks\": {}, \"naive_ns_per_iter\": {:.1}, \
             \"plan_ns_per_iter\": {:.1}, \"speedup\": {:.3}}}{comma}",
            p.tasks,
            p.subtasks,
            p.naive_ns_per_iter,
            p.plan_ns_per_iter,
            p.speedup()
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => println!("\nwrote BENCH_optimizer.json"),
        Err(e) => eprintln!("\nBENCH_optimizer.json not written: {e}"),
    }
}
