//! Supervised chaos soak: closed-loop self-healing vs shedding-only,
//! A/B over two unrecoverable-for-the-status-quo scenarios (gamma
//! thrash, inelastic overload).
//!
//! Progress goes to **stderr** via the telemetry event layer; stdout
//! carries the machine-readable CSV (also written to
//! `results/supervised_soak.csv`, byte-deterministic) followed by a
//! one-line JSON summary. Exits nonzero if the supervised arm fails to
//! win either scenario.

use lla_bench::supervised::run_supervised_soak;
use lla_telemetry::{Event, EventLog};

fn main() {
    let progress = EventLog::recording().with_stderr_echo();
    progress.emit(
        Event::new(0.0, "note")
            .with("msg", "supervised soak: self-healing vs shedding-only, two scenarios"),
    );

    let report = run_supervised_soak();
    let mut all_won = true;
    for cmp in &report.comparisons {
        all_won &= cmp.supervised_wins();
        progress.emit(
            Event::new(0.0, "comparison")
                .with("scenario", cmp.scenario)
                .with("supervised_verdict", cmp.supervised.verdict.as_str())
                .with("supervised_tail_utility", cmp.supervised.tail_utility)
                .with("shedding_only_verdict", cmp.shedding_only.verdict.as_str())
                .with("shedding_only_tail_utility", cmp.shedding_only.tail_utility)
                .with("remediations", cmp.supervised.remediations.len())
                .with("replicas", u64::from(cmp.supervised.total_replicas))
                .with("supervised_wins", cmp.supervised_wins()),
        );
        for r in &cmp.supervised.remediations {
            let mut ev = Event::new(0.0, "remediation")
                .with("scenario", cmp.scenario)
                .with("round", r.round)
                .with("action", r.kind.as_str())
                .with("value", r.value);
            if let Some(slot) = r.slot {
                ev = ev.with("slot", slot);
            }
            progress.emit(ev);
        }
    }

    // Machine output on stdout; the same bytes land in results/.
    print!("{}", report.series.to_csv());
    println!(
        "{{\"scenarios\": {}, \"all_supervised_wins\": {}}}",
        report.comparisons.len(),
        all_won
    );
    match report.series.write_csv("supervised_soak") {
        Ok(path) => {
            progress.emit(Event::new(0.0, "note").with("wrote", path.display().to_string()))
        }
        Err(e) => {
            progress.emit(Event::new(0.0, "note").with("msg", format!("csv not written: {e}")))
        }
    }
    progress.emit(Event::new(0.0, "note").with(
        "claim",
        "closed-loop supervision (gamma calm, dual re-sync, checkpoint rollback, elastic \
         replicas, escalating shedding) recovers deployments that the shedding-only governor \
         cannot: step-size thrash has no overload to shed, and inelastic overload has nothing \
         sheddable — both end converging under supervision, at no utility cost",
    ));

    if !all_won {
        std::process::exit(1);
    }
}
