//! Corruption sweep: sustained adversarial wire corruption vs the
//! validated codec, swept over rates 0–5%.
//!
//! Progress goes to **stderr** via the telemetry event layer; stdout
//! carries the machine-readable CSV (also written to
//! `results/corruption_sweep.csv`, byte-deterministic) followed by a
//! one-line JSON summary. Exits nonzero if any arm breaks an invariant:
//! unaccounted corrupted frames, a non-finite price, or a failure to
//! re-converge at or below the required rate ceiling.

use lla_bench::corruption::{run_sweep, RECONVERGENCE_RATE_CEILING, SWEEP_RATES};
use lla_telemetry::{Event, EventLog};

fn main() {
    let progress = EventLog::recording().with_stderr_echo();
    progress.emit(Event::new(0.0, "note").with(
        "msg",
        format!(
            "corruption sweep: rates {:?}, re-convergence required at <= {}",
            SWEEP_RATES, RECONVERGENCE_RATE_CEILING
        ),
    ));

    let report = run_sweep(7);
    for p in &report.points {
        progress.emit(
            Event::new(0.0, "arm")
                .with("rate", p.rate)
                .with("corrupted", p.corrupted)
                .with("rejected", p.rejected)
                .with("forged_deliveries", p.forged_deliveries)
                .with("verdict", p.verdict.as_str())
                .with("violation", p.violation)
                .with("prices_finite", p.prices_finite)
                .with("pass", p.passes()),
        );
    }

    // Machine output on stdout; the same bytes land in results/.
    print!("{}", report.series.to_csv());
    println!("{{\"arms\": {}, \"all_pass\": {}}}", report.points.len(), report.all_pass());
    match report.series.write_csv("corruption_sweep") {
        Ok(path) => {
            progress.emit(Event::new(0.0, "note").with("wrote", path.display().to_string()))
        }
        Err(e) => {
            progress.emit(Event::new(0.0, "note").with("msg", format!("csv not written: {e}")))
        }
    }
    progress.emit(Event::new(0.0, "note").with(
        "claim",
        "the validated wire codec rejects every malformed frame (rejected + checksum-fixed \
         forgeries == corrupted), no corrupted value ever reaches a price, and the dual \
         dynamics re-converge under sustained corruption up to the required ceiling — beyond \
         it, recovery belongs to supervised quarantine, not the codec",
    ));

    if !report.all_pass() {
        std::process::exit(1);
    }
}
