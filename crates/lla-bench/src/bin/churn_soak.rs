//! Chaos soak harness: Poisson task churn × crash/restart × partition ×
//! message loss on the virtual clock, followed by a deliberate overload
//! phase that exercises utility-aware load shedding with hysteresis.
//!
//! Prints a per-event summary and writes the byte-deterministic
//! `results/churn_sweep.csv` (all inputs are seeded; re-running produces
//! identical bytes).

use lla_bench::churn::{run_churn_soak, ChurnConfig, SoakEventKind};

fn main() {
    let config = ChurnConfig::default();
    println!("=== chaos soak: churn x crash x partition x {:.0}% loss ===\n", config.loss * 100.0);
    println!(
        "{:>5} {:>6} {:>5} {:>7} {:>6} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "event",
        "kind",
        "slot",
        "round",
        "epoch",
        "tasks",
        "reconverge",
        "u_dist",
        "u_oracle",
        "gap"
    );
    let report = run_churn_soak(&config);
    for (i, e) in report.events.iter().enumerate() {
        let kind = match e.kind {
            SoakEventKind::Join(_) => "join",
            SoakEventKind::Leave(_) => "leave",
            SoakEventKind::Shed(_) => "shed",
        };
        let reconverge =
            e.rounds_to_reconverge.map_or("never".to_string(), |r| format!("{r} rounds"));
        println!(
            "{i:>5} {kind:>6} {:>5} {:>7} {:>6} {:>7} {reconverge:>10} {:>12.3} {:>12.3} {:>7.2}%",
            e.kind.slot(),
            e.round,
            e.epoch,
            e.n_tasks,
            e.u_dist,
            e.u_oracle,
            e.gap * 100.0
        );
    }
    println!(
        "\n{} events over {} rounds; max settled gap {:.2}%; shed {:?}; flapping: {}",
        report.events.len(),
        report.rounds,
        report.max_settled_gap * 100.0,
        report.shed_slots,
        report.flapped
    );
    match report.series.write_csv("churn_sweep") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    if !report.all_reconverged() || report.flapped {
        std::process::exit(1);
    }
}
