//! Chaos soak harness: Poisson task churn × crash/restart × partition ×
//! message loss on the virtual clock, followed by a deliberate overload
//! phase that exercises utility-aware load shedding with hysteresis.
//!
//! The run is fully instrumented: a recording [`TelemetryHub`] captures
//! counters and the structured, virtual-clock-stamped event stream, which
//! is echoed live to **stderr** (human progress) and written to
//! `results/churn_events.jsonl` (byte-deterministic across same-seed
//! runs). stdout carries only machine output: the soak CSV followed by a
//! one-line JSON summary. Also writes `results/churn_sweep.csv`.

use lla_bench::churn::{run_churn_soak_instrumented, ChurnConfig, SoakEventKind};
use lla_telemetry::{Event, EventLog, TelemetryHub};

fn main() {
    let config = ChurnConfig::default();
    let progress = EventLog::recording().with_stderr_echo();
    progress.emit(
        Event::new(0.0, "note")
            .with("msg", "chaos soak: churn x crash x partition x loss")
            .with("loss", config.loss),
    );

    // Echo the runtime's own structured events (crash, restart, partition,
    // membership, shed, degraded transitions…) live as they are recorded.
    let mut hub = TelemetryHub::recording();
    hub.events = hub.events.with_stderr_echo();
    let report = run_churn_soak_instrumented(&config, &hub);

    for (i, e) in report.events.iter().enumerate() {
        let kind = match e.kind {
            SoakEventKind::Join(_) => "join",
            SoakEventKind::Leave(_) => "leave",
            SoakEventKind::Shed(_) => "shed",
        };
        let mut ev = Event::new(e.round as f64, "soak_event")
            .with("event", i)
            .with("kind", kind)
            .with("slot", e.kind.slot())
            .with("epoch", e.epoch)
            .with("tasks", e.n_tasks)
            .with("u_dist", e.u_dist)
            .with("u_oracle", e.u_oracle)
            .with("gap", e.gap);
        if let Some(r) = e.rounds_to_reconverge {
            ev = ev.with("reconverge_rounds", r);
        } else {
            ev = ev.with("reconverged", false);
        }
        progress.emit(ev);
    }
    progress.emit(
        Event::new(report.rounds as f64, "note")
            .with("events", report.events.len())
            .with("rounds", report.rounds)
            .with("max_settled_gap", report.max_settled_gap)
            .with("shed_slots", format!("{:?}", report.shed_slots))
            .with("flapping", report.flapped),
    );
    progress.emit(
        Event::new(report.rounds as f64, "diagnosis")
            .with("verdict", report.diagnosis.verdict.as_str())
            .with("confident", report.diagnosis.confident)
            .with("utility_oscillation", report.diagnosis.utility_oscillation)
            .with("violation_factor", report.diagnosis.violation_factor)
            .with("frozen_fraction", report.diagnosis.frozen_fraction),
    );

    // Machine output: the soak CSV plus a one-line JSON summary on stdout.
    print!("{}", report.series.to_csv());
    println!(
        "{{\"events\": {}, \"rounds\": {}, \"max_settled_gap\": {}, \"flapped\": {}, \
         \"verdict\": \"{}\", \"dist_events\": {}, \"messages_sent\": {}}}",
        report.events.len(),
        report.rounds,
        report.max_settled_gap,
        report.flapped,
        report.diagnosis.verdict,
        hub.events.len(),
        hub.metrics
            .prometheus_text()
            .lines()
            .find_map(|l| l.strip_prefix("lla_dist_messages_sent_total "))
            .unwrap_or("0")
            .trim()
    );

    match report.series.write_csv("churn_sweep") {
        Ok(path) => progress.emit(
            Event::new(report.rounds as f64, "note").with("wrote", path.display().to_string()),
        ),
        Err(e) => progress.emit(
            Event::new(report.rounds as f64, "note").with("msg", format!("csv not written: {e}")),
        ),
    }
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/churn_events.jsonl", hub.events.to_jsonl()))
    {
        Ok(()) => progress.emit(
            Event::new(report.rounds as f64, "note").with("wrote", "results/churn_events.jsonl"),
        ),
        Err(e) => progress.emit(
            Event::new(report.rounds as f64, "note").with("msg", format!("jsonl not written: {e}")),
        ),
    }

    if !report.all_reconverged() || report.flapped {
        std::process::exit(1);
    }
}
