//! Regenerates **Figure 5**: the effect of fixed and adaptive step sizes
//! on convergence (§5.2).
//!
//! The paper's observations, which this binary verifies on its own output:
//! γ = 10 oscillates with high amplitude; γ = 1 converges in roughly 500
//! iterations; γ = 0.1 needs well beyond 1000; adaptive γ (start 1,
//! double under congestion) stabilizes fastest and to the best value.
//!
//! A note on reading the numbers: an allocation that still violates the
//! path constraints reports an *inflated* utility (latencies too small are
//! "free benefit" until the prices catch up), so utilities are only
//! comparable among feasible series — exactly why γ = 0.1's high utility
//! at cutoff does not contradict the paper.

use lla_bench::{run_fig5_series, Series};
use lla_core::StepSizePolicy;

fn oscillation(series: &[f64], window: usize) -> f64 {
    let tail = &series[series.len().saturating_sub(window)..];
    let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

fn settling(series: &[f64], tol: f64) -> Option<usize> {
    let n = series.len().clamp(1, 20);
    let final_mean: f64 = series[series.len() - n..].iter().sum::<f64>() / n as f64;
    let band = tol * final_mean.abs().max(1.0);
    let mut settled = 0;
    for (i, &u) in series.iter().enumerate() {
        if (u - final_mean).abs() > band {
            settled = i + 1;
        }
    }
    (settled < series.len()).then_some(settled)
}

fn main() {
    const ITERS: usize = 1_500;
    let configs: Vec<(&str, StepSizePolicy)> = vec![
        ("gamma=0.1", StepSizePolicy::fixed(0.1)),
        ("gamma=1", StepSizePolicy::fixed(1.0)),
        ("gamma=10", StepSizePolicy::fixed(10.0)),
        ("adaptive", StepSizePolicy::adaptive(1.0)),
    ];

    println!("=== Figure 5: fixed vs adaptive step sizes (utility vs iteration) ===\n");
    let mut csv = Series::new(&["iteration", "gamma_0.1", "gamma_1", "gamma_10", "adaptive"]);
    let all: Vec<lla_bench::Fig5Series> =
        configs.iter().map(|(_, p)| run_fig5_series(*p, ITERS)).collect();
    for i in 0..ITERS {
        csv.push(vec![
            i as f64,
            all[0].utilities[i],
            all[1].utilities[i],
            all[2].utilities[i],
            all[3].utilities[i],
        ]);
    }

    println!(
        "{:>10} {:>14} {:>9} {:>16} {:>24}",
        "series", "final utility", "feasible", "osc (last 200)", "settling iter (1% band)"
    );
    for ((name, _), s) in configs.iter().zip(&all) {
        let settle = settling(&s.utilities, 0.01)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "not settled".into());
        println!(
            "{:>10} {:>14.2} {:>9} {:>16.2} {:>24}",
            name,
            s.utilities.last().unwrap(),
            s.feasible,
            oscillation(&s.utilities, 200),
            settle
        );
    }

    println!("\nutility vs iteration (min..max per series):");
    print!(
        "{}",
        lla_bench::render::spark_table(
            &configs
                .iter()
                .zip(&all)
                .map(|((n, _), s)| (*n, s.utilities.as_slice()))
                .collect::<Vec<_>>(),
            60,
        )
    );

    match csv.write_csv("fig5_stepsize") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }

    println!("\npaper claims:");
    let osc10 = oscillation(&all[2].utilities, 200);
    let osc1 = oscillation(&all[1].utilities, 200);
    println!(
        "  gamma=10 oscillates with high amplitude vs gamma=1: {} ({osc10:.1} vs {osc1:.1})",
        if osc10 > 10.0 * osc1.max(0.01) { "YES" } else { "NO" }
    );
    let s_adaptive = settling(&all[3].utilities, 0.01);
    println!(
        "  gamma=0.1 far from converged at cutoff (feasible={}, settled={:?}): {}",
        all[0].feasible,
        settling(&all[0].utilities, 0.01),
        if !all[0].feasible { "YES" } else { "NO" }
    );
    println!(
        "  adaptive settles fastest among feasible runs: adaptive={s_adaptive:?} vs gamma=1={:?}",
        settling(&all[1].utilities, 0.01)
    );
    // "Best value" among *feasible* series: the utility of an infeasible
    // allocation is not achievable.
    let best_feasible = all
        .iter()
        .zip(&configs)
        .filter(|(s, _)| s.feasible)
        .map(|(s, (n, _))| (*s.utilities.last().unwrap(), *n))
        .fold((f64::NEG_INFINITY, ""), |acc, x| if x.0 > acc.0 { x } else { acc });
    println!(
        "  adaptive stabilizes to the best feasible value: {} (best feasible: {} at {:.2})",
        if best_feasible.1 == "adaptive" { "YES" } else { "NO" },
        best_feasible.1,
        best_feasible.0
    );
}
