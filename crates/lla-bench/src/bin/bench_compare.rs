//! Perf-regression gate: diffs the newest `bench_optimizer` history
//! record against the committed baseline and exits nonzero on
//! regression.
//!
//! ```text
//! cargo run --release -p lla-bench --bin bench_compare -- [flags]
//!
//!   --history <path>     history JSONL (default results/bench_history.jsonl)
//!   --baseline <path>    baseline JSON (default results/bench_baseline.json)
//!   --label <l>          gate only records with this label (smoke|full)
//!   --write-baseline     seed/overwrite the baseline from the newest
//!                        record (default tolerances; see lla_bench::perf)
//!   --synthetic-regression <frac>
//!                        inflate every *_ns_per_iter metric of the newest
//!                        record by `frac` before comparing — the CI
//!                        self-test that proves the gate trips
//! ```
//!
//! Exit codes: `0` pass, `1` regression detected, `2` usage error,
//! `3` missing/unreadable history or baseline.
//!
//! Absolute ns/iter is machine-specific, so CI re-seeds the baseline on
//! the runner (`--write-baseline` from a first smoke run) before gating
//! a second run; the committed baseline serves the machine that produced
//! `BENCH_optimizer.json`.

use lla_bench::perf::{latest_record, Baseline, BASELINE_PATH, HISTORY_PATH};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    history: PathBuf,
    baseline: PathBuf,
    label: Option<String>,
    write_baseline: bool,
    synthetic_regression: Option<f64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_compare [--history <path>] [--baseline <path>] [--label <l>] \
         [--write-baseline] [--synthetic-regression <frac>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        history: PathBuf::from(HISTORY_PATH),
        baseline: PathBuf::from(BASELINE_PATH),
        label: None,
        write_baseline: false,
        synthetic_regression: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => opts.history = args.next().map(PathBuf::from).ok_or_else(usage)?,
            "--baseline" => opts.baseline = args.next().map(PathBuf::from).ok_or_else(usage)?,
            "--label" => opts.label = Some(args.next().ok_or_else(usage)?),
            "--write-baseline" => opts.write_baseline = true,
            "--synthetic-regression" => {
                let frac = args.next().ok_or_else(usage)?;
                opts.synthetic_regression =
                    Some(frac.parse::<f64>().map_err(|_| usage()).and_then(|f| {
                        if f.is_finite() && f >= 0.0 {
                            Ok(f)
                        } else {
                            Err(usage())
                        }
                    })?);
            }
            "--help" | "-h" => {
                let _ = usage();
                return Err(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let mut record = match latest_record(&opts.history, opts.label.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(3);
        }
    };
    eprintln!(
        "bench_compare: latest record ts={} label={} parallel={} ({} metrics)",
        record.ts,
        record.label,
        record.parallel,
        record.metrics.len()
    );

    if opts.write_baseline {
        let baseline = Baseline::from_record(&record);
        if let Some(dir) = opts.baseline.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&opts.baseline, baseline.to_json()) {
            eprintln!("bench_compare: cannot write {}: {e}", opts.baseline.display());
            return ExitCode::from(3);
        }
        eprintln!(
            "bench_compare: wrote {} ({} gated metrics)",
            opts.baseline.display(),
            baseline.metrics.len()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(frac) = opts.synthetic_regression {
        for (name, value) in &mut record.metrics {
            if name.ends_with("_ns_per_iter") {
                *value *= 1.0 + frac;
            }
        }
        eprintln!("bench_compare: applied synthetic +{:.0}% to *_ns_per_iter", frac * 100.0);
    }

    let baseline = match std::fs::read_to_string(&opts.baseline)
        .map_err(|e| format!("cannot read {}: {e}", opts.baseline.display()))
        .and_then(|text| Baseline::parse(&text))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_compare: {e} (seed it with --write-baseline)");
            return ExitCode::from(3);
        }
    };

    let comparisons = baseline.compare(&record);
    if comparisons.is_empty() {
        eprintln!(
            "bench_compare: no baseline metric present in the record — nothing gated \
             (label mismatch between baseline and record?)"
        );
        return ExitCode::from(3);
    }
    for c in &comparisons {
        println!("{}", c.render());
    }
    let regressions = comparisons.iter().filter(|c| c.regressed).count();
    if regressions > 0 {
        eprintln!("bench_compare: FAIL — {regressions}/{} metrics regressed", comparisons.len());
        ExitCode::from(1)
    } else {
        eprintln!("bench_compare: pass — {} metrics within tolerance", comparisons.len());
        ExitCode::SUCCESS
    }
}
