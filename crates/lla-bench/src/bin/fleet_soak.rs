//! Fleet-telemetry soak harness: the base workload with per-agent
//! telemetry reports shipped every round over a lossy, duplicating
//! network, and a scripted availability drop on resource 0 in the middle
//! of the run. The collector merges the reports into a fleet view and
//! the deterministic SLO engine walks the `fleet-overload` rule through
//! pending → firing while the window is open and resolves it after
//! capacity recovers.
//!
//! stderr carries the human-readable fleet panel (per-agent table plus
//! the alert timeline). stdout carries only machine output: a one-line
//! JSON summary. Also writes `results/fleet_alerts.jsonl` (the
//! byte-deterministic alert timeline) and `results/fleet_events.jsonl`
//! (the full structured event stream).

use lla_bench::fleet::{run_fleet_soak, FleetSoakConfig};
use lla_telemetry::TelemetryHub;

fn main() {
    let config = FleetSoakConfig::default();
    let hub = TelemetryHub::recording();
    let report = run_fleet_soak(&config, &hub);

    eprintln!(
        "fleet soak: seed={} loss={} duplication={} window=[{}, {}]",
        config.seed,
        config.loss,
        config.duplication,
        config.overload_start(),
        config.overload_end()
    );
    eprint!("{}", report.panel);

    println!(
        "{{\"alerts\": {}, \"fired_during_overload\": {}, \"resolved_after_recovery\": {}, \
         \"firing_at_end\": {}, \"reports_merged\": {}, \"reports_stale\": {}, \
         \"reports_lost\": {}, \"watermark_regressions\": {}}}",
        report.alerts.len(),
        report.fired_during_overload,
        report.resolved_after_recovery,
        report.firing_at_end,
        report.reports_merged,
        report.reports_stale,
        report.reports_lost,
        report.watermark_regressions
    );

    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/fleet_alerts.jsonl", report.alerts_jsonl()))
        .and_then(|()| std::fs::write("results/fleet_events.jsonl", hub.events.to_jsonl()))
    {
        eprintln!("results not written: {e}");
    } else {
        eprintln!("wrote results/fleet_alerts.jsonl and results/fleet_events.jsonl");
    }
}
