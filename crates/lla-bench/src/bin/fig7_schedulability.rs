//! Regenerates **Figure 7**: using LLA to test the schedulability of a
//! workload (§5.4).
//!
//! The 6-task workload keeps the *original* critical times (no
//! overprovisioning) and is unschedulable. The paper's observations: even
//! after 100 iterations neither the utility nor the per-resource share
//! sums converge; the fluctuations dampen slowly (which could be mistaken
//! for slow convergence), but the critical-path latencies sit at
//! 1.75–2.41× their critical times, proving infeasibility.

use lla_bench::run_fig7;
use lla_core::{analyze_schedulability, SchedulabilityConfig, SchedulabilityVerdict};
use lla_workloads::scaled_workload;

fn main() {
    const ITERS: usize = 300;
    let result = run_fig7(ITERS);

    println!("=== Figure 7: schedulability test on the unscaled 6-task workload ===\n");
    println!("converged after {ITERS} iterations: {}", result.converged);
    println!("\nper-task mean critical-path / critical-time ratio (last 50 iterations):");
    for (t, r) in result.violation_ratios.iter().enumerate() {
        println!("  task {}: {:.2}x", t + 1, r);
    }
    println!("\nper-resource mean share-sum / availability ratio (last 50 iterations):");
    for (r, u) in result.resource_ratios.iter().enumerate() {
        println!("  R{r}: {u:.2}x");
    }
    let max_res = result.resource_ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_res = result.resource_ratios.iter().cloned().fold(f64::INFINITY, f64::min);

    let utility: Vec<f64> = result.series.rows.iter().map(|r| r[1]).collect();
    let usage0: Vec<f64> = result.series.rows.iter().map(|r| r[2]).collect();
    println!("\nnon-convergence, visualized (min..max per series):");
    print!(
        "{}",
        lla_bench::render::spark_table(
            &[("utility", utility.as_slice()), ("usage R0", usage0.as_slice())],
            60,
        )
    );

    match result.series.write_csv("fig7_schedulability") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }

    // The paper's §5.4 verdict via the schedulability API.
    let verdict =
        analyze_schedulability(scaled_workload(2, false), &SchedulabilityConfig::default());
    println!("\nschedulability verdict: {verdict:?}");

    println!("\npaper claims:");
    println!("  does not converge: {}", if !result.converged { "YES" } else { "NO" });
    println!(
        "  constraints persistently violated well beyond capacity\n\
         \x20   (paper: critical paths at 1.75-2.41x critical time; ours: share sums at\n\
         \x20   {:.2}-{:.2}x availability — under our clamped allocator the infeasibility\n\
         \x20   parks on the resource constraints, same detection power): {}",
        min_res,
        max_res,
        if max_res > 1.1 { "YES" } else { "NO" }
    );
    println!(
        "  detected as unschedulable: {}",
        if matches!(verdict, SchedulabilityVerdict::Unschedulable { .. }) { "YES" } else { "NO" }
    );
}
