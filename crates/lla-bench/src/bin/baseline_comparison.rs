//! LLA vs classical deadline-slicing baselines (§7 positioning).
//!
//! Deadline slicing assigns per-subtask latencies per task, in isolation,
//! without modeling resource capacity — "neither BST nor AST account for
//! resource capacity". This binary measures the consequence on the paper's
//! base workload (where the optimum puts every resource exactly at
//! congestion) and on its 2× replication: the slicers either over-commit
//! the shared resources (infeasible schedules) or leave utility on the
//! table, while LLA coordinates through prices to a feasible optimum.

use lla_baselines::{all_baselines, evaluate};
use lla_bench::{paper_optimizer_config, Series};
use lla_core::{Optimizer, StepSizePolicy};
use lla_workloads::{base_workload, scaled_workload};

fn main() {
    let mut csv = Series::new(&[
        "workload",
        "policy",
        "utility",
        "feasible",
        "max_resource_violation",
        "max_path_violation",
    ]);

    for (w, (name, problem)) in
        [("base-3-tasks", base_workload()), ("scaled-6-tasks", scaled_workload(2, true))]
            .into_iter()
            .enumerate()
    {
        println!("=== workload: {name} ===");
        println!(
            "{:>14} {:>12} {:>9} {:>22} {:>20}",
            "policy", "utility", "feasible", "max resource violation", "max path violation"
        );

        for baseline in all_baselines() {
            let report = evaluate(&problem, baseline.as_ref());
            println!(
                "{:>14} {:>12.2} {:>9} {:>22.3} {:>20.3}",
                report.name,
                report.utility,
                report.feasible,
                report.max_resource_violation,
                report.max_path_violation
            );
            csv.push(vec![
                w as f64,
                all_baselines().iter().position(|b| b.name() == report.name).unwrap() as f64,
                report.utility,
                if report.feasible { 1.0 } else { 0.0 },
                report.max_resource_violation,
                report.max_path_violation,
            ]);
        }

        let mut opt =
            Optimizer::new(problem, paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)));
        let outcome = opt.run_to_convergence(10_000);
        let lats = opt.allocation();
        println!(
            "{:>14} {:>12.2} {:>9} {:>22.3} {:>20.3}  (converged: {})",
            "LLA",
            opt.utility(),
            opt.problem().is_feasible(lats.lats(), 1e-3),
            opt.problem().max_resource_violation(lats.lats()),
            opt.problem().max_path_violation(lats.lats()),
            outcome.converged
        );
        csv.push(vec![
            w as f64,
            3.0,
            opt.utility(),
            1.0,
            opt.problem().max_resource_violation(lats.lats()),
            opt.problem().max_path_violation(lats.lats()),
        ]);
        println!();
    }

    match csv.write_csv("baseline_comparison") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }

    println!("\ntakeaway: slicing satisfies its per-task deadlines by construction but is");
    println!("capacity-blind — on congested workloads it over-commits resources, which a");
    println!("proportional-share scheduler turns into unbounded queueing; LLA's prices");
    println!("coordinate tasks to a feasible utility optimum instead.");
}
