//! Robustness sweep (beyond the paper's evaluation): convergence of LLA
//! across randomly generated schedulable workloads as the resource load
//! approaches congestion.
//!
//! The paper evaluates one hand-built workload near congestion (§5.1,
//! "the performance of LLA when resources are close to congestion
//! constitutes a lower bound for its performance with all other
//! schedulable workloads"). This sweep tests that statement statistically:
//! every generated workload carries a constructive feasibility witness, so
//! a non-convergence would be a genuine algorithm failure, and iterations
//! to convergence should grow as the witness load approaches capacity.
//!
//! A second sweep exercises the *fault-tolerance* layer of the
//! distributed runtime: controller crash count × partition duration ×
//! message loss, measuring utility degradation during the fault window
//! and recovery time after it. Both sweeps are fully seeded (virtual
//! time, seeded RNGs), so the emitted CSVs are byte-deterministic.
//!
//! Progress is routed through the telemetry event layer onto **stderr**;
//! stdout carries only the two machine-readable CSV documents (which are
//! also written under `results/`).

use lla_bench::{paper_optimizer_config, render::sparkline, Series};
use lla_core::{Optimizer, StepSizePolicy};
use lla_dist::{Address, DistConfig, DistributedLla, FaultPlan, NetworkModel, RobustnessConfig};
use lla_telemetry::{Event, EventLog};
use lla_workloads::RandomWorkloadConfig;

/// One protocol round of virtual time (ms), matching `DistConfig`.
const ROUND: f64 = 10.0;

/// Crash count × partition duration × loss: a resource loses capacity at
/// the moment the faults strike, and we measure how far utility
/// undershoots the new steady state and how many rounds the system needs
/// to re-converge to it.
fn fault_sweep(progress: &EventLog) {
    const WARMUP_ROUNDS: usize = 600;
    const RECOVERY_CAP: usize = 2_000;
    const DEGRADED_AVAILABILITY: f64 = 0.4;

    let workload = RandomWorkloadConfig {
        target_load: 0.7,
        num_tasks: 4,
        deadline_headroom: 1.4,
        seed: 42,
        ..Default::default()
    };

    // The target of recovery: the centralized optimum after the capacity
    // loss.
    let u_ref = {
        let mut degraded = workload.generate().expect("valid config");
        let rid = degraded.resources()[0].id();
        degraded
            .set_resource_availability(rid, DEGRADED_AVAILABILITY)
            .expect("degraded availability is valid");
        let mut opt =
            Optimizer::new(degraded, paper_optimizer_config(StepSizePolicy::adaptive(1.0)));
        opt.run_to_convergence(20_000);
        opt.utility()
    };

    progress.emit(
        Event::new(0.0, "note")
            .with("msg", "fault sweep: crashes x partition x loss (capacity drop at fault onset)")
            .with("u_ref", u_ref),
    );

    let mut csv = Series::new(&[
        "loss",
        "partition_rounds",
        "crashes",
        "u_before",
        "u_ref",
        "max_rel_undershoot",
        "recovery_rounds",
        "u_final",
    ]);
    for loss in [0.0, 0.1, 0.3] {
        for partition_rounds in [0usize, 20, 40] {
            for crashes in [0usize, 1, 2] {
                let problem = workload.generate().expect("valid config");
                let n_tasks = problem.tasks().len();
                let n_resources = problem.resources().len();
                let mut dist = DistributedLla::new(
                    problem,
                    DistConfig {
                        step_policy: StepSizePolicy::adaptive(1.0),
                        network: NetworkModel::lossy(0.5, 1.0, loss),
                        seed: 7,
                        robustness: RobustnessConfig {
                            checkpoint_interval: 50.0,
                            staleness_ttl: 30.0,
                            retransmit_interval: ROUND,
                            ..RobustnessConfig::default()
                        },
                        ..DistConfig::default()
                    },
                );

                // Script the faults: the capacity drop and a partition of
                // all controllers from all resources strike together right
                // after warmup, then staggered controller crash/restart
                // cycles follow the heal.
                let t0 = WARMUP_ROUNDS as f64 * ROUND;
                let partition_ms = partition_rounds as f64 * ROUND;
                let mut plan = FaultPlan::new().set_availability(t0, 0, DEGRADED_AVAILABILITY);
                if partition_rounds > 0 {
                    plan = plan.partition(
                        t0,
                        partition_ms,
                        (0..n_tasks).map(Address::Controller).collect::<Vec<_>>(),
                        (0..n_resources).map(Address::Resource).collect::<Vec<_>>(),
                    );
                }
                for i in 0..crashes {
                    let at = t0 + partition_ms + 50.0 + i as f64 * 200.0;
                    plan = plan.crash_for(at, 100.0, Address::Controller(i % n_tasks));
                }
                dist.schedule_faults(&plan);

                dist.run_rounds(WARMUP_ROUNDS);
                let u_before = dist.utility();

                // From fault onset, run round by round until utility
                // settles within 1% of the degraded optimum, tracking the
                // worst undershoot along the way.
                let tol = 0.01 * u_ref.abs().max(1.0);
                let mut u_min = dist.utility();
                let mut recovery_rounds = RECOVERY_CAP;
                for round in 0..RECOVERY_CAP {
                    if (dist.utility() - u_ref).abs() <= tol {
                        recovery_rounds = round;
                        break;
                    }
                    dist.run_rounds(1);
                    u_min = u_min.min(dist.utility());
                }

                let u_final = dist.utility();
                let max_rel_undershoot = (u_ref - u_min) / u_ref.abs().max(1.0);
                let final_gap = (u_final - u_ref).abs() / u_ref.abs().max(1.0);
                progress.emit(
                    Event::new(dist.runtime().now(), "fault_point")
                        .with("loss", loss)
                        .with("partition_rounds", partition_rounds)
                        .with("crashes", crashes)
                        .with("max_rel_undershoot", max_rel_undershoot)
                        .with("recovery_rounds", recovery_rounds)
                        .with("final_gap", final_gap),
                );
                csv.push(vec![
                    loss,
                    partition_rounds as f64,
                    crashes as f64,
                    u_before,
                    u_ref,
                    max_rel_undershoot,
                    recovery_rounds as f64,
                    u_final,
                ]);
            }
        }
    }

    // Machine output on stdout; the same bytes land in results/.
    print!("{}", csv.to_csv());
    match csv.write_csv("fault_recovery_sweep") {
        Ok(path) => {
            progress.emit(Event::new(0.0, "note").with("wrote", path.display().to_string()))
        }
        Err(e) => {
            progress.emit(Event::new(0.0, "note").with("msg", format!("csv not written: {e}")))
        }
    }
    progress.emit(Event::new(0.0, "note").with(
        "claim",
        "with checkpoints, staleness freezing, and reliable control-plane dissemination, \
         LLA re-converges to the degraded optimum after a capacity loss despite crashes, \
         partitions, and message loss; partitions delay recovery by exactly their duration",
    ));
}

fn main() {
    const SEEDS: u64 = 20;
    const BUDGET: usize = 20_000;

    let progress = EventLog::recording().with_stderr_echo();
    progress.emit(
        Event::new(0.0, "note")
            .with("msg", "robustness sweep: random schedulable workloads vs load"),
    );

    let mut csv = Series::new(&["target_load", "seed", "converged", "iterations", "utility"]);
    for load in [0.5, 0.7, 0.85, 0.95] {
        let mut iters: Vec<f64> = Vec::new();
        let mut converged = 0usize;
        for seed in 0..SEEDS {
            let cfg = RandomWorkloadConfig {
                target_load: load,
                num_tasks: 5,
                deadline_headroom: 1.4,
                seed,
                ..Default::default()
            };
            let problem = cfg.generate().expect("valid config");
            let mut opt =
                Optimizer::new(problem, paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)));
            let outcome = opt.run_to_convergence(BUDGET);
            if outcome.converged {
                converged += 1;
            }
            iters.push(outcome.iterations as f64);
            csv.push(vec![
                load,
                seed as f64,
                if outcome.converged { 1.0 } else { 0.0 },
                outcome.iterations as f64,
                outcome.final_utility,
            ]);
        }
        iters.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = iters[iters.len() / 2];
        let p90 = iters[(iters.len() * 9) / 10];
        let max = *iters.last().expect("non-empty");
        progress.emit(
            Event::new(0.0, "sweep_point")
                .with("load", load)
                .with("converged", converged)
                .with("seeds", SEEDS)
                .with("median_iters", median)
                .with("p90_iters", p90)
                .with("max_iters", max)
                .with("spread", sparkline(&iters, 20)),
        );
    }

    // Machine output on stdout; the same bytes land in results/.
    print!("{}", csv.to_csv());
    match csv.write_csv("robustness_sweep") {
        Ok(path) => {
            progress.emit(Event::new(0.0, "note").with("wrote", path.display().to_string()))
        }
        Err(e) => {
            progress.emit(Event::new(0.0, "note").with("msg", format!("csv not written: {e}")))
        }
    }
    progress.emit(Event::new(0.0, "note").with(
        "claim",
        "LLA converges on every constructively schedulable workload, with iteration counts \
         growing as the load approaches congestion — the paper's \"close to congestion is \
         the lower bound\" observation, measured",
    ));

    fault_sweep(&progress);
}
