//! Robustness sweep (beyond the paper's evaluation): convergence of LLA
//! across randomly generated schedulable workloads as the resource load
//! approaches congestion.
//!
//! The paper evaluates one hand-built workload near congestion (§5.1,
//! "the performance of LLA when resources are close to congestion
//! constitutes a lower bound for its performance with all other
//! schedulable workloads"). This sweep tests that statement statistically:
//! every generated workload carries a constructive feasibility witness, so
//! a non-convergence would be a genuine algorithm failure, and iterations
//! to convergence should grow as the witness load approaches capacity.

use lla_bench::{paper_optimizer_config, render::sparkline, Series};
use lla_core::{Optimizer, StepSizePolicy};
use lla_workloads::RandomWorkloadConfig;

fn main() {
    const SEEDS: u64 = 20;
    const BUDGET: usize = 20_000;

    println!("=== robustness sweep: random schedulable workloads vs load ===\n");
    println!(
        "{:>6} {:>11} {:>14} {:>14} {:>14}   iteration spread",
        "load", "converged", "median iters", "p90 iters", "max iters"
    );

    let mut csv = Series::new(&["target_load", "seed", "converged", "iterations", "utility"]);
    for load in [0.5, 0.7, 0.85, 0.95] {
        let mut iters: Vec<f64> = Vec::new();
        let mut converged = 0usize;
        for seed in 0..SEEDS {
            let cfg = RandomWorkloadConfig {
                target_load: load,
                num_tasks: 5,
                deadline_headroom: 1.4,
                seed,
                ..Default::default()
            };
            let problem = cfg.generate().expect("valid config");
            let mut opt = Optimizer::new(
                problem,
                paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)),
            );
            let outcome = opt.run_to_convergence(BUDGET);
            if outcome.converged {
                converged += 1;
            }
            iters.push(outcome.iterations as f64);
            csv.push(vec![
                load,
                seed as f64,
                if outcome.converged { 1.0 } else { 0.0 },
                outcome.iterations as f64,
                outcome.final_utility,
            ]);
        }
        iters.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = iters[iters.len() / 2];
        let p90 = iters[(iters.len() * 9) / 10];
        let max = *iters.last().expect("non-empty");
        println!(
            "{load:>6.2} {:>8}/{SEEDS} {median:>14.0} {p90:>14.0} {max:>14.0}   {}",
            converged,
            sparkline(&iters, 20)
        );
    }

    match csv.write_csv("robustness_sweep") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv not written: {e}"),
    }
    println!("\nclaim checked: LLA converges on every constructively schedulable workload,");
    println!("with iteration counts growing as the load approaches congestion — the paper's");
    println!("\"close to congestion is the lower bound\" observation, measured.");
}
