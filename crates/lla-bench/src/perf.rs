//! Perf-regression history: timestamped benchmark records, a committed
//! baseline with per-metric noise tolerances, and the comparison logic
//! behind the `bench_compare` gate.
//!
//! `bench_optimizer` appends one [`BenchRecord`] per run to
//! `results/bench_history.jsonl` (one JSON object per line, append-only,
//! so the perf trajectory survives `BENCH_optimizer.json` being
//! overwritten). `bench_compare` loads the newest record, compares every
//! metric named in a baseline file against its tolerance, and exits
//! nonzero on regression. Because absolute ns/iter is machine-specific,
//! CI re-seeds the baseline on the runner (`--write-baseline`) before
//! gating; the committed `results/bench_baseline.json` serves developers
//! on the machine that produced `BENCH_optimizer.json`.
//!
//! Everything here is std-only: records and baselines are written with
//! deterministic formatting and read back by the minimal JSON parser in
//! this module (objects, arrays, strings, numbers, booleans, null — all
//! this subsystem emits).

use crate::{OptimizerBenchPoint, ShardedBenchPoint};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Default history path, relative to the repository root.
pub const HISTORY_PATH: &str = "results/bench_history.jsonl";
/// Default baseline path, relative to the repository root.
pub const BASELINE_PATH: &str = "results/bench_baseline.json";

/// Relative tolerance for `*_ns_per_iter` metrics (lower is better).
/// Generous enough for run-to-run scheduler noise on one machine, tight
/// enough that the synthetic 30% regression check always trips.
pub const NS_TOLERANCE: f64 = 0.25;
/// Absolute tolerance for overhead-ratio metrics (values near zero, so
/// relative comparison is meaningless).
pub const OVERHEAD_TOLERANCE: f64 = 0.10;
/// Relative tolerance for `rounds_to_converge` (lower is better; the
/// round count is deterministic, but leave headroom for intentional
/// step-policy changes to be re-baselined consciously).
pub const ROUNDS_TOLERANCE: f64 = 0.05;

/// One benchmark run: a Unix timestamp, a label (`smoke` or `full`), the
/// build flavor, and a flat name → value metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Seconds since the Unix epoch when the run finished.
    pub ts: u64,
    /// Run label: `smoke` (CI guard geometry) or `full` (the whole
    /// sweep).
    pub label: String,
    /// Whether the `parallel` feature was compiled in.
    pub parallel: bool,
    /// Flat metric map, e.g. `smoke.sharded_wall_ns_per_iter`.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchRecord {
    /// A record stamped with the current wall clock.
    pub fn now(label: &str, parallel: bool) -> Self {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        BenchRecord { ts, label: label.to_string(), parallel, metrics: BTreeMap::new() }
    }

    /// Inserts one metric (builder style).
    pub fn metric(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.insert(name.into(), value);
        self
    }

    /// One deterministic JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"ts\": {}, \"label\": \"{}\", \"parallel\": {}, \"metrics\": {{",
            self.ts, self.label, self.parallel
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { ", " } else { "" };
            let _ = write!(out, "\"{k}\": {}{comma}", fmt_num(*v));
        }
        out.push_str("}}");
        out
    }

    /// Parses a line written by [`to_json_line`](Self::to_json_line).
    ///
    /// # Errors
    ///
    /// Malformed JSON or missing/mistyped fields.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = Json::parse(line)?;
        let obj = v.as_object().ok_or("record line is not a JSON object")?;
        let ts = obj.get("ts").and_then(Json::as_f64).ok_or("missing numeric `ts`")? as u64;
        let label =
            obj.get("label").and_then(Json::as_str).ok_or("missing string `label`")?.to_string();
        let parallel =
            obj.get("parallel").and_then(Json::as_bool).ok_or("missing bool `parallel`")?;
        let metrics_obj =
            obj.get("metrics").and_then(Json::as_object).ok_or("missing object `metrics`")?;
        let mut metrics = BTreeMap::new();
        for (k, v) in metrics_obj {
            metrics
                .insert(k.clone(), v.as_f64().ok_or_else(|| format!("metric `{k}` not numeric"))?);
        }
        Ok(BenchRecord { ts, label, parallel, metrics })
    }

    /// Appends this record to the JSONL history at `path` (creating
    /// parent directories as needed).
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut text = std::fs::read_to_string(path).unwrap_or_default();
        text.push_str(&self.to_json_line());
        text.push('\n');
        std::fs::write(path, text)
    }
}

/// Flattens one flat-sweep point into `flat.{tasks}.*` metrics.
pub fn record_flat_point(record: &mut BenchRecord, p: &OptimizerBenchPoint) {
    let k = |name: &str| format!("flat.{}.{name}", p.tasks);
    record
        .metric(k("naive_ns_per_iter"), p.naive_ns_per_iter)
        .metric(k("plan_ns_per_iter"), p.plan_ns_per_iter)
        .metric(k("telemetry_disabled_ns_per_iter"), p.telemetry_disabled_ns_per_iter)
        .metric(k("telemetry_enabled_ns_per_iter"), p.telemetry_enabled_ns_per_iter)
        .metric(k("span_enabled_ns_per_iter"), p.span_enabled_ns_per_iter)
        .metric(k("profile_disabled_ns_per_iter"), p.profile_disabled_ns_per_iter)
        .metric(k("telemetry_disabled_overhead"), p.telemetry_disabled_overhead())
        .metric(k("telemetry_enabled_overhead"), p.telemetry_enabled_overhead())
        .metric(k("span_enabled_overhead"), p.span_enabled_overhead())
        .metric(k("profile_disabled_overhead"), p.profile_disabled_overhead());
    if let Some(rounds) = p.rounds_to_converge {
        record
            .metric(k("rounds_to_converge"), rounds as f64)
            .metric(k("converged"), f64::from(u8::from(p.converged)));
    }
}

/// Flattens one sharded-sweep point into `{prefix}.*` metrics — callers
/// pass `sharded.{tasks}.{shards}` for sweep points or `smoke` for the
/// CI guard point.
pub fn record_sharded_point(record: &mut BenchRecord, p: &ShardedBenchPoint, prefix: &str) {
    let k = |name: &str| format!("{prefix}.{name}");
    record
        .metric(k("monolithic_ns_per_iter"), p.monolithic_ns_per_iter)
        .metric(k("sharded_wall_ns_per_iter"), p.sharded_wall_ns_per_iter)
        .metric(k("critical_path_ns_per_iter"), p.critical_path_ns_per_iter)
        .metric(k("coordinator_ns_per_iter"), p.coordinator_ns_per_iter)
        .metric(k("sequential_overhead"), p.sequential_overhead());
    if let Some(rounds) = p.rounds_to_converge {
        record
            .metric(k("rounds_to_converge"), rounds as f64)
            .metric(k("converged"), f64::from(u8::from(p.converged)));
    }
}

/// Loads the newest history record, optionally restricted to a label.
///
/// # Errors
///
/// Unreadable file, no (matching) records, or a malformed newest line.
pub fn latest_record(path: &Path, label: Option<&str>) -> Result<BenchRecord, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let line = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .rfind(|l| {
            label.is_none_or(|want| BenchRecord::from_json_line(l).is_ok_and(|r| r.label == want))
        })
        .ok_or_else(|| format!("no matching records in {}", path.display()))?;
    BenchRecord::from_json_line(line)
}

/// How one baseline metric is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Lower is better: regression when `value > base × (1 + tol)`.
    Lower,
    /// Higher is better: regression when `value < base × (1 − tol)`.
    Higher,
    /// Band: regression when `|value − base| > tol` (absolute).
    Abs,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
            Direction::Abs => "abs",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "lower" => Ok(Direction::Lower),
            "higher" => Ok(Direction::Higher),
            "abs" => Ok(Direction::Abs),
            other => Err(format!("unknown direction `{other}`")),
        }
    }
}

/// One gated metric in a [`Baseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMetric {
    /// The reference value.
    pub value: f64,
    /// Noise tolerance (relative for `lower`/`higher`, absolute for
    /// `abs`).
    pub tol: f64,
    /// Comparison direction.
    pub direction: Direction,
}

/// The committed comparison target: per-metric reference values with
/// explicit tolerances and directions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Gated metrics by name.
    pub metrics: BTreeMap<String, BaselineMetric>,
}

/// Classifies a metric name into its default comparison rule — the
/// documented tolerance policy `--write-baseline` applies:
///
/// * `*_ns_per_iter` → lower is better, ±[`NS_TOLERANCE`] relative;
/// * `*overhead*` → absolute band of [`OVERHEAD_TOLERANCE`] (ratios near
///   zero);
/// * `*rounds_to_converge` → lower is better, ±[`ROUNDS_TOLERANCE`];
/// * `*converged` → higher is better, zero tolerance (a point that
///   stops converging is always a regression);
/// * everything else (speedups, efficiencies, counts) is informational
///   and not gated.
pub fn default_rule(name: &str) -> Option<(f64, Direction)> {
    if name.ends_with("_ns_per_iter") {
        Some((NS_TOLERANCE, Direction::Lower))
    } else if name.contains("overhead") {
        Some((OVERHEAD_TOLERANCE, Direction::Abs))
    } else if name.ends_with("rounds_to_converge") {
        Some((ROUNDS_TOLERANCE, Direction::Lower))
    } else if name.ends_with("converged") {
        Some((0.0, Direction::Higher))
    } else {
        None
    }
}

/// One comparison outcome from [`Baseline::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Latest-run value.
    pub value: f64,
    /// The metric's tolerance.
    pub tol: f64,
    /// The metric's direction.
    pub direction: Direction,
    /// Whether the value breached the tolerance in the bad direction.
    pub regressed: bool,
}

impl Comparison {
    /// One aligned report line, e.g.
    /// `FAIL smoke.sharded_wall_ns_per_iter 13441.0 -> 18000.2 (+33.9%, tol 25.0%)`.
    pub fn render(&self) -> String {
        let verdict = if self.regressed { "FAIL" } else { "  ok" };
        let delta = match self.direction {
            Direction::Abs => format!("{:+.4} abs, tol {:.4}", self.value - self.base, self.tol),
            _ if self.base.abs() > f64::EPSILON => format!(
                "{:+.1}%, tol {:.1}%",
                (self.value / self.base - 1.0) * 100.0,
                self.tol * 100.0
            ),
            _ => format!("base 0, tol {:.1}%", self.tol * 100.0),
        };
        format!("{verdict} {} {:.4} -> {:.4} ({delta})", self.name, self.base, self.value)
    }
}

impl Baseline {
    /// Builds a baseline from a record, applying [`default_rule`] to
    /// every metric (ungated metrics are dropped).
    pub fn from_record(record: &BenchRecord) -> Self {
        let mut metrics = BTreeMap::new();
        for (name, &value) in &record.metrics {
            if let Some((tol, direction)) = default_rule(name) {
                metrics.insert(name.clone(), BaselineMetric { value, tol, direction });
            }
        }
        Baseline { metrics }
    }

    /// Deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": {\n");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"value\": {}, \"tol\": {}, \"direction\": \"{}\"}}{comma}",
                fmt_num(m.value),
                fmt_num(m.tol),
                m.direction.as_str()
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a document written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Malformed JSON or missing/mistyped fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let obj = v.as_object().ok_or("baseline is not a JSON object")?;
        let metrics_obj =
            obj.get("metrics").and_then(Json::as_object).ok_or("missing object `metrics`")?;
        let mut metrics = BTreeMap::new();
        for (name, entry) in metrics_obj {
            let e = entry.as_object().ok_or_else(|| format!("metric `{name}` not an object"))?;
            let value = e
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`{name}`: no value"))?;
            let tol =
                e.get("tol").and_then(Json::as_f64).ok_or_else(|| format!("`{name}`: no tol"))?;
            let direction = Direction::parse(
                e.get("direction")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("`{name}`: no direction"))?,
            )?;
            metrics.insert(name.clone(), BaselineMetric { value, tol, direction });
        }
        Ok(Baseline { metrics })
    }

    /// Compares `record` against this baseline: one [`Comparison`] per
    /// baseline metric present in the record (absent metrics are
    /// skipped — a smoke record gates only smoke metrics).
    pub fn compare(&self, record: &BenchRecord) -> Vec<Comparison> {
        let mut out = Vec::new();
        for (name, m) in &self.metrics {
            let Some(&value) = record.metrics.get(name) else { continue };
            let regressed = match m.direction {
                Direction::Lower => value > m.value * (1.0 + m.tol) + f64::EPSILON,
                Direction::Higher => value < m.value * (1.0 - m.tol) - f64::EPSILON,
                Direction::Abs => (value - m.value).abs() > m.tol,
            };
            out.push(Comparison {
                name: name.clone(),
                base: m.value,
                value,
                tol: m.tol,
                direction: m.direction,
                regressed,
            });
        }
        out
    }
}

/// Shortest-roundtrip float rendering with a guaranteed decimal point or
/// exponent so the output parses back as f64 unambiguously.
fn fmt_num(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// A parsed JSON value — the minimal std-only reader for this module's
/// own documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (sorted by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Syntax errors, with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object map, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Copy the full UTF-8 sequence starting at this byte.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
                let _ = c;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number bytes")?;
    s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{s}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        let mut r = BenchRecord {
            ts: 1_700_000_000,
            label: "smoke".into(),
            parallel: false,
            metrics: BTreeMap::new(),
        };
        r.metric("smoke.monolithic_ns_per_iter", 10_000.0)
            .metric("smoke.sharded_wall_ns_per_iter", 11_000.0)
            .metric("smoke.sequential_overhead", 0.1)
            .metric("smoke.rounds_to_converge", 120.0)
            .metric("smoke.converged", 1.0)
            .metric("smoke.modeled_speedup", 2.5);
        r
    }

    #[test]
    fn record_roundtrips_through_json_line() {
        let r = record();
        let parsed = BenchRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn latest_record_reads_last_matching_line() {
        let dir = std::env::temp_dir().join("lla_perf_test_history");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("bench_history.jsonl");
        let mut a = record();
        a.ts = 1;
        let mut b = record();
        b.ts = 2;
        b.metric("smoke.monolithic_ns_per_iter", 9_999.0);
        a.append_to(&path).unwrap();
        b.append_to(&path).unwrap();
        let latest = latest_record(&path, Some("smoke")).unwrap();
        assert_eq!(latest.ts, 2);
        assert_eq!(latest.metrics["smoke.monolithic_ns_per_iter"], 9_999.0);
        assert!(latest_record(&path, Some("full")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_roundtrips_and_applies_default_rules() {
        let base = Baseline::from_record(&record());
        // speedup is informational → dropped; the five gated ones stay.
        assert_eq!(base.metrics.len(), 5);
        assert_eq!(base.metrics["smoke.monolithic_ns_per_iter"].direction, Direction::Lower);
        assert_eq!(base.metrics["smoke.sequential_overhead"].direction, Direction::Abs);
        assert_eq!(base.metrics["smoke.converged"].direction, Direction::Higher);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = Baseline::from_record(&record());
        let mut run = record();
        run.metric("smoke.sharded_wall_ns_per_iter", 11_000.0 * 1.20); // within 25%
        let cmp = base.compare(&run);
        assert!(cmp.iter().all(|c| !c.regressed), "{cmp:?}");
    }

    #[test]
    fn compare_flags_30_percent_ns_regression() {
        let base = Baseline::from_record(&record());
        let mut run = record();
        run.metric("smoke.sharded_wall_ns_per_iter", 11_000.0 * 1.30);
        let cmp = base.compare(&run);
        let bad: Vec<_> = cmp.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "smoke.sharded_wall_ns_per_iter");
        assert!(bad[0].render().starts_with("FAIL "));
    }

    #[test]
    fn compare_flags_convergence_loss_and_round_growth() {
        let base = Baseline::from_record(&record());
        let mut run = record();
        run.metric("smoke.converged", 0.0).metric("smoke.rounds_to_converge", 180.0);
        let bad: Vec<String> =
            base.compare(&run).into_iter().filter(|c| c.regressed).map(|c| c.name).collect();
        assert_eq!(bad, vec!["smoke.converged", "smoke.rounds_to_converge"]);
    }

    #[test]
    fn compare_skips_metrics_absent_from_the_run() {
        let base = Baseline::from_record(&record());
        let run =
            BenchRecord { ts: 3, label: "smoke".into(), parallel: false, metrics: BTreeMap::new() };
        assert!(base.compare(&run).is_empty());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v =
            Json::parse(r#"{"a": [1, 2.5, -3e2], "s": "x\"\nA", "t": true, "n": null}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(obj["s"].as_str(), Some("x\"\nA"));
        assert_eq!(obj["t"].as_bool(), Some(true));
        assert_eq!(obj["n"], Json::Null);
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }
}
