//! # `lla-bench` — experiment harness for the LLA reproduction
//!
//! One binary per table/figure of the paper's evaluation (§5–§6), each
//! built on the experiment functions in this library so the criterion
//! benches measure exactly the code the binaries run:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1_base_workload` | Table 1 (optimization results on the base workload) |
//! | `fig5_stepsize` | Figure 5 (fixed vs adaptive step sizes) |
//! | `fig6_scalability` | Figure 6 (convergence as tasks scale 3→6→12) |
//! | `fig7_schedulability` | Figure 7 (unschedulable workload detection) |
//! | `fig8_error_correction` | Figure 8 (prototype with model error correction) |
//!
//! Binaries print a human-readable summary and write the raw series as CSV
//! under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod corruption;
pub mod fleet;
pub mod perf;
pub mod render;
pub mod supervised;

use lla_core::{
    allocate_latencies, Aggregation, Allocation, AllocationSettings, Optimizer, OptimizerConfig,
    PriceState, Problem, ShardSpec, ShardedOptimizer, StepSizePolicy,
};
use lla_sim::{ClosedLoop, ClosedLoopConfig, SimConfig};
use lla_telemetry::{HealthSnapshot, MetricsRegistry, ProfileSnapshot, Profiler, SpanRecorder};
use lla_workloads::{
    base_workload_with, clustered_workload, large_scale_workload, prototype_workload,
    scaled_workload, PrototypeParams,
};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// The optimizer configuration used across the simulation experiments
/// (§5): the paper's defaults — adaptive step size starting at γ = 1,
/// path-weighted utility handled by the workload itself.
pub fn paper_optimizer_config(policy: StepSizePolicy) -> OptimizerConfig {
    OptimizerConfig {
        step_policy: policy,
        allocation: AllocationSettings::default(),
        ..OptimizerConfig::default()
    }
}

/// A rendered experiment series: column headers plus rows of numbers.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Column names.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Series { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header count.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{v:.6}");
                first = false;
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `results/<name>.csv` (creating the directory),
    /// returning the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Result of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// The converged optimizer (problem + allocation inside).
    pub utility: f64,
    /// Iterations to convergence.
    pub iterations: usize,
    /// Whether convergence was reached.
    pub converged: bool,
    /// Final allocation.
    pub allocation: Allocation,
    /// Per-task `(critical path latency, critical time)`.
    pub critical: Vec<(f64, f64)>,
    /// Per-resource share sums.
    pub usage: Vec<f64>,
}

/// Runs the Table 1 experiment: LLA with adaptive γ on the base workload.
pub fn run_table1(aggregation: Aggregation, max_iters: usize) -> Table1Result {
    run_table1_health(aggregation, max_iters).0
}

/// [`run_table1`] plus the converged optimizer's [`HealthSnapshot`] — the
/// telemetry-driven readout of the same run: convergence and feasibility
/// flags, KKT residual norms, and per-resource price/usage/utilization.
pub fn run_table1_health(
    aggregation: Aggregation,
    max_iters: usize,
) -> (Table1Result, HealthSnapshot) {
    let problem = base_workload_with(aggregation, 2.0);
    let mut opt = Optimizer::new(problem, paper_optimizer_config(StepSizePolicy::adaptive(1.0)));
    let outcome = opt.run_to_convergence(max_iters);
    let health = opt.health_snapshot();
    let allocation = opt.allocation();
    let critical: Vec<(f64, f64)> = opt
        .problem()
        .tasks()
        .iter()
        .map(|t| (allocation.task_latency(t), t.critical_time()))
        .collect();
    let usage: Vec<f64> = opt
        .problem()
        .resources()
        .iter()
        .map(|r| opt.problem().resource_usage(r.id(), allocation.lats()))
        .collect();
    let result = Table1Result {
        utility: opt.utility(),
        iterations: opt.iterations(),
        converged: outcome.converged,
        allocation,
        critical,
        usage,
    };
    (result, health)
}

/// One Figure 5 series.
#[derive(Debug, Clone)]
pub struct Fig5Series {
    /// Utility after each iteration.
    pub utilities: Vec<f64>,
    /// Whether the final allocation satisfies both constraint families
    /// within 0.1% — an infeasible allocation reports an *inflated*
    /// utility, so cross-series utility comparisons are only meaningful
    /// among feasible ones.
    pub feasible: bool,
}

/// Runs one Figure 5 series: utility per iteration under the given step
/// policy, for `iters` iterations.
pub fn run_fig5_series(policy: StepSizePolicy, iters: usize) -> Fig5Series {
    let problem = base_workload_with(Aggregation::PathWeighted, 2.0);
    let mut opt = Optimizer::new(problem, paper_optimizer_config(policy));
    let utilities: Vec<f64> = opt.run(iters).into_iter().map(|r| r.utility).collect();
    let feasible = opt.problem().is_feasible(opt.allocation().lats(), 1e-3);
    Fig5Series { utilities, feasible }
}

/// Result of one Figure 6 scaling point.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Number of tasks.
    pub tasks: usize,
    /// Whether LLA converged within the budget.
    pub converged: bool,
    /// Iterations to convergence (or the budget).
    pub iterations: usize,
    /// First iteration after which the utility stays within 1% of its
    /// final mean — how the paper's Figure 6 "flattening" reads.
    pub settling: Option<usize>,
    /// Final utility.
    pub utility: f64,
    /// Wall-clock time of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Mean wall-clock cost of one iteration, in microseconds.
    pub us_per_iteration: f64,
}

/// Runs the Figure 6 experiment: replicate the base workload (scaling
/// critical times to preserve schedulability) and measure convergence.
///
/// Uses the sign-adaptive policy: the paper's congestion-only heuristic
/// fails to formally converge on the 12-task point (see the ablation bench
/// and EXPERIMENTS.md).
pub fn run_fig6_point(replication: usize, max_iters: usize) -> ScalePoint {
    let problem = scaled_workload(replication, true);
    let tasks = problem.tasks().len();
    let mut opt =
        Optimizer::new(problem, paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)));
    let start = Instant::now();
    let outcome = opt.run_to_convergence(max_iters);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    ScalePoint {
        tasks,
        converged: outcome.converged,
        iterations: outcome.iterations,
        settling: opt.trace().settling_iteration(0.01),
        utility: outcome.final_utility,
        wall_ms,
        us_per_iteration: wall_ms * 1e3 / outcome.iterations.max(1) as f64,
    }
}

/// Runs one Figure 6 point with a recording [`Profiler`] attached and
/// returns the scope-tree snapshot: a `plan_lower` root, a `step` root
/// with `allocate` / `price` / `lagrangian` / `trace` children, and a
/// `kkt` root from the final optimality check.
///
/// The run is fully deterministic (fixed workload, fixed policy), so the
/// snapshot's *call counts* are identical on every run and pinned by a
/// golden test; the wall-clock fields are this machine's.
pub fn run_fig6_profile(replication: usize, max_iters: usize) -> ProfileSnapshot {
    let problem = scaled_workload(replication, true);
    let mut opt =
        Optimizer::new(problem, paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)));
    let profiler = Profiler::recording();
    opt.attach_profiler(&profiler);
    opt.run_to_convergence(max_iters);
    std::hint::black_box(opt.kkt());
    profiler.snapshot()
}

/// One LLA round over the naive (nested-`Vec`) code path, exactly as the
/// pre-plan optimizer stepped under its default configuration: allocate at
/// the stored prices, update the prices from the new allocation, recompute
/// the diagnostics the step reports (utility and both violation families),
/// and rebuild the trace record's columns (per-resource usage and per-task
/// critical-path ratios — each another full pass, which is precisely the
/// recomputation the compiled plan eliminates).
///
/// This is the baseline the compiled [`lla_core::Plan`] is benchmarked
/// against; `lla-bench`'s `bench_optimizer` binary and the
/// `optimizer_plan` criterion bench both call it. The returned sink value
/// folds every computed quantity so none of the passes can be optimized
/// out.
pub fn naive_round(
    problem: &Problem,
    prices: &mut PriceState,
    settings: &AllocationSettings,
    lats: &mut Vec<Vec<f64>>,
) -> f64 {
    *lats = allocate_latencies(problem, prices, settings, lats);
    // The seed's price update: gradients for every resource and path
    // collected into freshly allocated vectors, then applied in a second
    // walk that re-enumerates each path's subtasks. (`PriceState::update`
    // has since folded this into one walk, so the baseline preserves the
    // original shape through the public per-entity appliers, which are
    // unchanged.)
    let grad_r: Vec<f64> = problem
        .resources()
        .iter()
        .map(|r| r.availability() - problem.resource_usage(r.id(), lats))
        .collect();
    let grad_p: Vec<Vec<f64>> = problem
        .tasks()
        .iter()
        .map(|task| {
            let tl = &lats[task.id().index()];
            task.graph()
                .paths()
                .iter()
                .map(|path| 1.0 - path.latency(tl) / task.critical_time())
                .collect()
        })
        .collect();
    let congested: Vec<bool> = grad_r.iter().map(|&g| g < 0.0).collect();
    prices.reset_step_tracking();
    for (r, &g) in grad_r.iter().enumerate() {
        prices.apply_resource_step(r, g);
    }
    for (t, task) in problem.tasks().iter().enumerate() {
        for (p, path) in task.graph().paths().iter().enumerate() {
            let traverses_congested =
                path.subtasks().iter().any(|&s| congested[task.subtasks()[s].resource().index()]);
            prices.apply_path_step(t, p, grad_p[t][p], traverses_congested);
        }
    }
    let utility = problem.total_utility(lats);
    let res = problem.max_resource_violation(lats).max(0.0);
    let path = problem.max_path_violation(lats).max(0.0);
    // The seed step's trace record: usage per resource and critical-path
    // ratio per task, recomputed from scratch as `Trace` stored them.
    let usage: Vec<f64> =
        problem.resources().iter().map(|r| problem.resource_usage(r.id(), lats)).collect();
    let ratios: Vec<f64> = problem
        .tasks()
        .iter()
        .map(|t| {
            let (_, cp) = t.graph().critical_path(&lats[t.id().index()]);
            cp / t.critical_time()
        })
        .collect();
    utility + res + path + usage.iter().sum::<f64>() + ratios.iter().sum::<f64>()
}

/// One scaling point of the optimizer benchmark: per-iteration wall-clock
/// cost of the naive round vs the compiled-plan [`Optimizer::step`].
#[derive(Debug, Clone, Copy)]
pub struct OptimizerBenchPoint {
    /// Number of tasks in the workload.
    pub tasks: usize,
    /// Total subtasks (the hot loop's true size).
    pub subtasks: usize,
    /// Mean nanoseconds per naive iteration.
    pub naive_ns_per_iter: f64,
    /// Mean nanoseconds per compiled-plan iteration.
    pub plan_ns_per_iter: f64,
    /// Mean nanoseconds per compiled-plan iteration with telemetry
    /// attached to a *disabled* registry (all handles branch-no-op).
    pub telemetry_disabled_ns_per_iter: f64,
    /// Mean nanoseconds per compiled-plan iteration with telemetry
    /// attached to an *enabled* registry (counters, gauges, and phase
    /// histograms live).
    pub telemetry_enabled_ns_per_iter: f64,
    /// Mean nanoseconds per compiled-plan iteration with a *recording*
    /// span recorder attached (one causal span per iteration on top of
    /// the bare step).
    pub span_enabled_ns_per_iter: f64,
    /// Mean nanoseconds per compiled-plan iteration with a *disabled*
    /// [`Profiler`] attached (every scope a branch-on-bool no-op; the
    /// perf gate bounds this within noise of the bare step).
    pub profile_disabled_ns_per_iter: f64,
    /// Iterations a fresh optimizer ran in the convergence measurement:
    /// the iteration it formally converged at, or [`max_rounds`]
    /// (`Self::max_rounds`) if the cap was hit first (see
    /// [`converged`](Self::converged)). `None` only when the measurement
    /// was skipped (budget 0).
    pub rounds_to_converge: Option<usize>,
    /// Whether the convergence measurement formally converged within
    /// [`max_rounds`](Self::max_rounds).
    pub converged: bool,
    /// The explicit round cap of the convergence measurement (0 when
    /// skipped).
    pub max_rounds: usize,
}

impl OptimizerBenchPoint {
    /// Naive-over-plan speedup factor.
    pub fn speedup(&self) -> f64 {
        self.naive_ns_per_iter / self.plan_ns_per_iter
    }

    /// Relative per-iteration overhead of disabled telemetry vs the
    /// un-instrumented step (should be noise, ≤ ~1%).
    pub fn telemetry_disabled_overhead(&self) -> f64 {
        self.telemetry_disabled_ns_per_iter / self.plan_ns_per_iter - 1.0
    }

    /// Relative per-iteration overhead of enabled telemetry vs the
    /// un-instrumented step (clock reads + atomic bumps, ≤ ~5%).
    pub fn telemetry_enabled_overhead(&self) -> f64 {
        self.telemetry_enabled_ns_per_iter / self.plan_ns_per_iter - 1.0
    }

    /// Relative per-iteration overhead of recording causal spans vs the
    /// un-instrumented step (one span append per iteration under a
    /// mutex; stays small because the hot loop shares one recorder).
    pub fn span_enabled_overhead(&self) -> f64 {
        self.span_enabled_ns_per_iter / self.plan_ns_per_iter - 1.0
    }

    /// Relative per-iteration overhead of a disabled profiler vs the
    /// un-instrumented step (a handful of branches; the acceptance gate
    /// keeps it within ±2% measurement noise).
    pub fn profile_disabled_overhead(&self) -> f64 {
        self.profile_disabled_ns_per_iter / self.plan_ns_per_iter - 1.0
    }
}

/// Measures one optimizer scaling point on [`large_scale_workload`]:
/// `warmup` untimed iterations followed by `iters` timed ones, for the
/// naive round and the compiled-plan step on identical fresh copies of the
/// problem. Both sides run the default configuration's full step,
/// including the trace columns (the plan reads them off its scratch
/// buffers; the naive path recomputes them, as the seed optimizer did).
pub fn bench_optimizer_point(
    num_tasks: usize,
    seed: u64,
    warmup: usize,
    iters: usize,
    converge_budget: usize,
) -> OptimizerBenchPoint {
    let problem = large_scale_workload(num_tasks, seed).expect("generator config is valid");
    let subtasks = problem.tasks().iter().map(|t| t.len()).sum();
    let config = OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    };

    // Every measurement below is best-of-3 with the variants
    // *interleaved*: repetition r runs every variant once (fresh state,
    // `warmup` untimed iterations, `iters` timed) before repetition r+1
    // starts. Clock-frequency and cache drift over the point's wall time
    // then hits all variants alike instead of accumulating against the
    // ones measured last — sequential ordering was enough to fake a
    // double-digit-percent "overhead" on a branch-only no-op handle at
    // the 10k point. The per-variant min across repetitions still
    // filters scheduler preemption and first-touch page faults.

    // Naive side: the seed optimizer's step, hand-inlined over nested Vecs.
    let naive_rep = || {
        let mut prices = PriceState::new(&problem, config.step_policy);
        let mut lats = problem.initial_allocation();
        let mut sink = 0.0;
        for _ in 0..warmup {
            sink += naive_round(&problem, &mut prices, &config.allocation, &mut lats);
        }
        let start = Instant::now();
        for _ in 0..iters {
            sink += naive_round(&problem, &mut prices, &config.allocation, &mut lats);
        }
        std::hint::black_box(sink);
        start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64
    };

    // Plan side and telemetry cost: the real optimizer (which lowers the
    // problem once), bare, with a disabled registry attached (every
    // publish is a branch no-op), and with a live one (atomic bumps plus
    // three phase-timing clock reads).
    let timed_run = |registry: Option<MetricsRegistry>| -> f64 {
        let mut opt = Optimizer::new(problem.clone(), config);
        if let Some(registry) = &registry {
            opt.attach_telemetry(registry);
        }
        for _ in 0..warmup {
            std::hint::black_box(opt.step());
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(opt.step());
        }
        start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64
    };

    // Span tracing cost: the same step with a recording span recorder
    // attached — one "iteration" span appended per step, nothing else.
    let span_rep = || {
        let mut opt = Optimizer::new(problem.clone(), config);
        let recorder = SpanRecorder::recording();
        opt.attach_spans(&recorder);
        for _ in 0..warmup {
            std::hint::black_box(opt.step());
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(opt.step());
        }
        start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64
    };

    // Profiler-handle cost: the same step with a *disabled* profiler
    // attached — every scope entry is one branch, no clock reads.
    let profile_rep = || {
        let mut opt = Optimizer::new(problem.clone(), config);
        let profiler = Profiler::disabled();
        opt.attach_profiler(&profiler);
        for _ in 0..warmup {
            std::hint::black_box(opt.step());
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(opt.step());
        }
        start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64
    };

    let mut naive_ns_per_iter = f64::INFINITY;
    let mut plan_ns_per_iter = f64::INFINITY;
    let mut telemetry_disabled_ns_per_iter = f64::INFINITY;
    let mut telemetry_enabled_ns_per_iter = f64::INFINITY;
    let mut span_enabled_ns_per_iter = f64::INFINITY;
    let mut profile_disabled_ns_per_iter = f64::INFINITY;
    for _ in 0..3 {
        naive_ns_per_iter = naive_ns_per_iter.min(naive_rep());
        plan_ns_per_iter = plan_ns_per_iter.min(timed_run(None));
        telemetry_disabled_ns_per_iter =
            telemetry_disabled_ns_per_iter.min(timed_run(Some(MetricsRegistry::disabled())));
        telemetry_enabled_ns_per_iter =
            telemetry_enabled_ns_per_iter.min(timed_run(Some(MetricsRegistry::new())));
        span_enabled_ns_per_iter = span_enabled_ns_per_iter.min(span_rep());
        profile_disabled_ns_per_iter = profile_disabled_ns_per_iter.min(profile_rep());
    }

    // Rounds to formal convergence (utility stable + prices quiescent +
    // feasible) from a fresh start — the other axis the scaling story
    // needs besides per-iteration cost. The executed round count is
    // reported even when the cap is hit (`converged` tells them apart),
    // so the regression gate can track convergence cost at every scale.
    let (rounds_to_converge, converged) = if converge_budget > 0 {
        let mut opt = Optimizer::new(problem.clone(), config);
        let outcome = opt.run_to_convergence(converge_budget);
        (Some(outcome.iterations), outcome.converged)
    } else {
        (None, false)
    };

    OptimizerBenchPoint {
        tasks: num_tasks,
        subtasks,
        naive_ns_per_iter,
        plan_ns_per_iter,
        telemetry_disabled_ns_per_iter,
        telemetry_enabled_ns_per_iter,
        span_enabled_ns_per_iter,
        profile_disabled_ns_per_iter,
        rounds_to_converge,
        converged,
        max_rounds: converge_budget,
    }
}

/// One point of the sharded scaling sweep: a fixed clustered problem
/// optimized monolithically and with `shards` shards, with the sharded
/// round's cost decomposed per shard ([`ShardedOptimizer::step_timed`]).
///
/// Efficiency reporting is honest about the measurement machine: every
/// phase is *executed* sequentially and `critical_path_ns_per_iter` is
/// the modeled round cost with one free core per shard (slowest shard +
/// sequential coordinator round). `sharded_wall_ns_per_iter` is what the
/// round actually cost wall-clock on this machine.
#[derive(Debug, Clone)]
pub struct ShardedBenchPoint {
    /// Number of tasks in the workload.
    pub tasks: usize,
    /// Total subtasks.
    pub subtasks: usize,
    /// Shard count of this point.
    pub shards: usize,
    /// Resources shared between shards (coordinator-priced).
    pub shared_resources: usize,
    /// Mean nanoseconds per monolithic [`Optimizer::step`] on the same
    /// problem.
    pub monolithic_ns_per_iter: f64,
    /// Mean wall-clock nanoseconds per sharded round, executed
    /// sequentially.
    pub sharded_wall_ns_per_iter: f64,
    /// Mean modeled nanoseconds per round with one core per shard:
    /// `max_s(shard cost) + coordinator cost`.
    pub critical_path_ns_per_iter: f64,
    /// Mean nanoseconds of the coordinator round alone.
    pub coordinator_ns_per_iter: f64,
    /// Rounds the convergence measurement ran: the round it formally
    /// converged at, or [`max_rounds`](Self::max_rounds) if the cap was
    /// hit first (see [`converged`](Self::converged)). `None` only when
    /// the measurement was skipped (budget 0, or a shard count the sweep
    /// does not measure).
    pub rounds_to_converge: Option<usize>,
    /// Whether the convergence measurement formally converged within
    /// [`max_rounds`](Self::max_rounds).
    pub converged: bool,
    /// The explicit round cap of the convergence measurement (0 when
    /// skipped).
    pub max_rounds: usize,
}

impl ShardedBenchPoint {
    /// Modeled parallel efficiency at one core per shard:
    /// `monolithic / (shards × critical path)`. 1.0 is perfect linear
    /// scaling; the gap is shard imbalance + the sequential coordinator +
    /// per-shard resource-array overhead.
    pub fn parallel_efficiency(&self) -> f64 {
        self.monolithic_ns_per_iter / (self.shards as f64 * self.critical_path_ns_per_iter)
    }

    /// Modeled speedup over the monolithic step at one core per shard.
    pub fn modeled_speedup(&self) -> f64 {
        self.monolithic_ns_per_iter / self.critical_path_ns_per_iter
    }

    /// Sequential-execution overhead of sharding: total sharded work per
    /// round relative to the monolithic step (what a one-core machine
    /// pays for the decomposition; the CI guard bounds this).
    pub fn sequential_overhead(&self) -> f64 {
        self.sharded_wall_ns_per_iter / self.monolithic_ns_per_iter - 1.0
    }
}

/// Geometry and measurement protocol for [`bench_sharded_sweep`].
#[derive(Debug, Clone)]
pub struct ShardedSweepConfig {
    /// Total tasks in the clustered workload.
    pub num_tasks: usize,
    /// Clusters in the generator; every entry of `shard_counts` must
    /// divide it so contiguous shards align with cluster boundaries.
    pub num_clusters: usize,
    /// Shard counts to measure — one [`ShardedBenchPoint`] each.
    pub shard_counts: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
    /// Untimed warmup rounds per measurement.
    pub warmup: usize,
    /// Timed rounds per measurement.
    pub iters: usize,
    /// Repetitions; every reported number is the best of these.
    pub reps: usize,
    /// Rounds-to-convergence budget (0 = skip).
    pub converge_budget: usize,
}

/// Runs the sharded scaling sweep on one clustered workload
/// ([`clustered_workload`] with `num_clusters` clusters): measures the
/// monolithic per-iteration cost once, then one [`ShardedBenchPoint`] per
/// entry of `shard_counts`. All measurements are best-of-`reps` over
/// `warmup` untimed + `iters` timed rounds; `converge_budget` (0 = skip)
/// bounds the rounds-to-convergence run at the largest shard count only —
/// convergence rounds are shard-count independent in practice, and at the
/// million-task point one run is already minutes.
pub fn bench_sharded_sweep(sweep: &ShardedSweepConfig) -> Vec<ShardedBenchPoint> {
    let &ShardedSweepConfig {
        num_tasks,
        num_clusters,
        seed,
        warmup,
        iters,
        reps,
        converge_budget,
        ..
    } = sweep;
    let shard_counts = &sweep.shard_counts;
    let (problem, _) = clustered_workload(num_tasks, num_clusters, seed).expect("valid geometry");
    let subtasks = problem.tasks().iter().map(|t| t.len()).sum();
    let config = OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    };
    let reps = reps.max(1);

    let monolithic_ns_per_iter = (0..reps)
        .map(|_| {
            let mut opt = Optimizer::new(problem.clone(), config);
            for _ in 0..warmup {
                std::hint::black_box(opt.step());
            }
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(opt.step());
            }
            start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64
        })
        .fold(f64::INFINITY, f64::min);

    shard_counts
        .iter()
        .map(|&shards| {
            let spec = ShardSpec::contiguous(problem.tasks().len(), shards);
            let mut best_wall = f64::INFINITY;
            let mut best_crit = f64::INFINITY;
            let mut best_coord = f64::INFINITY;
            let mut shared_resources = 0;
            for _ in 0..reps {
                let mut opt = ShardedOptimizer::new(problem.clone(), config, spec.clone())
                    .expect("contiguous spec is a partition");
                shared_resources = opt.num_shared_resources();
                for _ in 0..warmup {
                    std::hint::black_box(opt.step());
                }
                let mut crit = 0.0;
                let mut coord = 0.0;
                let start = Instant::now();
                for _ in 0..iters {
                    let (rep, timing) = opt.step_timed();
                    std::hint::black_box(rep);
                    crit += timing.critical_path_ns();
                    coord += timing.coordinator_ns;
                }
                let wall = start.elapsed().as_secs_f64() * 1e9 / iters.max(1) as f64;
                if wall < best_wall {
                    best_wall = wall;
                    best_crit = crit / iters.max(1) as f64;
                    best_coord = coord / iters.max(1) as f64;
                }
            }
            let measured =
                converge_budget > 0 && shards == *shard_counts.iter().max().unwrap_or(&1);
            let (rounds_to_converge, converged) = if measured {
                let mut opt = ShardedOptimizer::new(problem.clone(), config, spec.clone())
                    .expect("contiguous spec is a partition");
                let outcome = opt.run_to_convergence(converge_budget);
                (Some(outcome.iterations), outcome.converged)
            } else {
                (None, false)
            };
            ShardedBenchPoint {
                tasks: num_tasks,
                subtasks,
                shards,
                shared_resources,
                monolithic_ns_per_iter,
                sharded_wall_ns_per_iter: best_wall,
                critical_path_ns_per_iter: best_crit,
                coordinator_ns_per_iter: best_coord,
                rounds_to_converge,
                converged,
                max_rounds: if measured { converge_budget } else { 0 },
            }
        })
        .collect()
}

/// Result of the Figure 7 schedulability experiment.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Utility and per-resource share sums per iteration.
    pub series: Series,
    /// Whether the run converged (the paper's point: it must not).
    pub converged: bool,
    /// Mean critical-path/critical-time ratio per task over the last 50
    /// iterations (paper reports 1.75–2.41).
    pub violation_ratios: Vec<f64>,
    /// Mean share-sum/availability ratio per resource over the last 50
    /// iterations — where the infeasibility parks under our clamped
    /// allocator.
    pub resource_ratios: Vec<f64>,
}

/// Runs the Figure 7 experiment: the 6-task workload *without* scaling
/// critical times, which is unschedulable.
pub fn run_fig7(iterations: usize) -> Fig7Result {
    let problem = scaled_workload(2, false);
    let num_resources = problem.resources().len();
    let num_tasks = problem.tasks().len();
    let mut opt = Optimizer::new(problem, paper_optimizer_config(StepSizePolicy::adaptive(1.0)));
    let mut headers: Vec<String> = vec!["iteration".into(), "utility".into()];
    headers.extend((0..num_resources).map(|r| format!("usage_r{r}")));
    let mut series = Series { headers, rows: Vec::new() };
    for _ in 0..iterations {
        let rep = opt.step();
        let lats = opt.allocation();
        let mut row = vec![rep.iteration as f64, rep.utility];
        for r in opt.problem().resources() {
            row.push(opt.problem().resource_usage(r.id(), lats.lats()));
        }
        series.rows.push(row);
    }
    let converged = opt.has_converged();
    let trace = opt.trace();
    let window = 50.min(trace.len()).max(1);
    let mut ratios = vec![0.0; num_tasks];
    let mut res_ratios = vec![0.0; num_resources];
    for rec in &trace.records()[trace.len() - window..] {
        for (t, &r) in rec.critical_path_ratio.iter().enumerate() {
            ratios[t] += r / window as f64;
        }
        for (r, &u) in rec.resource_usage.iter().enumerate() {
            let b = opt.problem().resources()[r].availability().max(1e-9);
            res_ratios[r] += u / b / window as f64;
        }
    }
    Fig7Result { series, converged, violation_ratios: ratios, resource_ratios: res_ratios }
}

/// Result of the Figure 8 closed-loop experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Per-window series: time, fast/slow shares, corrections.
    pub series: Series,
    /// Fast-subtask share before error correction.
    pub fast_before: f64,
    /// Fast-subtask share at the end.
    pub fast_after: f64,
    /// Slow-subtask share before error correction.
    pub slow_before: f64,
    /// Slow-subtask share at the end.
    pub slow_after: f64,
}

/// Runs the Figure 8 experiment: the §6.2 prototype workload in the
/// closed loop, enabling error correction after `warmup_windows`.
pub fn run_fig8(warmup_windows: usize, corrected_windows: usize, window_ms: f64) -> Fig8Result {
    let problem = prototype_workload(&PrototypeParams::default());
    let mut cl = ClosedLoop::new(
        problem,
        paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)),
        SimConfig::default(),
        ClosedLoopConfig { window: window_ms, correction_enabled: false, ..Default::default() },
    );
    cl.run_windows(warmup_windows);
    cl.set_correction_enabled(true);
    cl.run_windows(corrected_windows);

    let mut series = Series::new(&[
        "time_ms",
        "fast_share",
        "slow_share",
        "fast_correction",
        "slow_correction",
        "utility",
    ]);
    for rec in cl.history() {
        series.push(vec![
            rec.time,
            rec.shares[0][0],
            rec.shares[2][0],
            rec.corrections[0][0],
            rec.corrections[2][0],
            rec.utility,
        ]);
    }
    let before = &cl.history()[warmup_windows.saturating_sub(1)];
    let after = cl.history().last().expect("windows ran");
    Fig8Result {
        fast_before: before.shares[0][0],
        fast_after: after.shares[0][0],
        slow_before: before.shares[2][0],
        slow_after: after.shares[2][0],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrip() {
        let mut s = Series::new(&["a", "b"]);
        s.push(vec![1.0, 2.0]);
        let csv = s.to_csv();
        assert!(csv.starts_with("a,b\n1.000000,2.000000\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn series_rejects_ragged_rows() {
        let mut s = Series::new(&["a"]);
        s.push(vec![1.0, 2.0]);
    }

    #[test]
    fn table1_converges_and_respects_deadlines() {
        let result = run_table1(Aggregation::PathWeighted, 3_000);
        assert!(result.converged);
        for &(cp, c) in &result.critical {
            assert!(cp <= c * 1.001, "critical path {cp} vs critical time {c}");
            // The paper: critical path within 1% below the critical time.
            assert!(cp >= c * 0.97, "critical path {cp} should be near {c}");
        }
    }

    #[test]
    fn table1_health_snapshot_is_healthy() {
        let (result, health) = run_table1_health(Aggregation::PathWeighted, 3_000);
        assert!(health.converged && health.feasible, "{health}");
        assert!(health.healthy(), "{health}");
        assert_eq!(health.utility, result.utility);
        assert_eq!(health.resources.len(), result.usage.len());
        for (r, &usage) in health.resources.iter().zip(&result.usage) {
            assert_eq!(r.usage, usage, "snapshot usage must match the Table 1 readout");
        }
    }

    #[test]
    fn fig6_points_converge() {
        let p = run_fig6_point(2, 4_000);
        assert_eq!(p.tasks, 6);
        assert!(p.converged);
    }
}
