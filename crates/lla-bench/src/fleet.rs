//! Fleet-telemetry soak: a seeded distributed run with the telemetry
//! plane *on* (per-agent reports shipped every round over a lossy
//! network) and a scripted overload window in the middle, so the
//! default `fleet-overload` SLO rule must walk pending → firing while
//! the window is open and resolve after capacity recovers.
//!
//! Everything is derived from the virtual clock and seeded state, so
//! two soaks with the same config produce byte-identical alert
//! timelines — the determinism the golden-file CI smoke test pins.

use lla_dist::fault::FaultPlan;
use lla_dist::{DistConfig, DistTelemetry, DistributedLla, NetworkModel};
use lla_telemetry::{Event, TelemetryHub};
use lla_workloads::base_workload;

/// One protocol round of virtual time (the deployment default).
const ROUND: f64 = 10.0;

/// Configuration of the fleet-telemetry soak.
#[derive(Debug, Clone, Copy)]
pub struct FleetSoakConfig {
    /// Network + tick seed.
    pub seed: u64,
    /// Message-loss probability (also applied to telemetry reports).
    pub loss: f64,
    /// Duplication probability (exercises the collector's seq dedupe).
    pub duplication: f64,
    /// Rounds before the overload window opens.
    pub warmup_rounds: usize,
    /// Rounds the overload window stays open.
    pub overload_rounds: usize,
    /// Rounds run after capacity recovers.
    pub recovery_rounds: usize,
    /// Availability multiplier during the window (< 1 starves resource 0
    /// below demand, which is what makes its agent report overload).
    pub availability_drop: f64,
}

impl Default for FleetSoakConfig {
    fn default() -> Self {
        FleetSoakConfig {
            seed: 2008,
            loss: 0.05,
            duplication: 0.05,
            warmup_rounds: 150,
            overload_rounds: 80,
            recovery_rounds: 150,
            availability_drop: 0.35,
        }
    }
}

impl FleetSoakConfig {
    /// Virtual time at which the overload window opens.
    pub fn overload_start(&self) -> f64 {
        self.warmup_rounds as f64 * ROUND
    }

    /// Virtual time at which capacity recovers.
    pub fn overload_end(&self) -> f64 {
        (self.warmup_rounds + self.overload_rounds) as f64 * ROUND
    }
}

/// What the soak observed, derived entirely from virtual-clock state.
#[derive(Debug, Clone)]
pub struct FleetSoakReport {
    /// The rendered fleet panel at the end of the run: the collector's
    /// per-agent table plus the alert timeline ([`crate::render::fleet_panel`]).
    pub panel: String,
    /// Every `alert` event, in emission order.
    pub alerts: Vec<Event>,
    /// Whether `fleet-overload` was in the Firing state at some point
    /// while the window was open (grace: one round past close, since the
    /// collector evaluates at phase 0.9 of the round). Episode-based: an
    /// alert that entered Firing before the window opened and stayed
    /// firing through it counts — the transition event itself may
    /// predate the scripted fault when the fleet is organically noisy.
    pub fired_during_overload: bool,
    /// Whether every firing episode overlapping the window resolved —
    /// the scripted overload did not leave the alert stuck firing. The
    /// fleet may still flap organically after recovery (the base
    /// workload under loss trips the zero-threshold rule on transient
    /// congestion); those episodes show up in `firing_at_end`, not here.
    pub resolved_after_recovery: bool,
    /// Alerts still firing when the soak ended.
    pub firing_at_end: usize,
    /// Collector merge accounting: reports merged into the fleet view.
    pub reports_merged: u64,
    /// Duplicate/old reports discarded by sequence dedupe.
    pub reports_stale: u64,
    /// Reports counted lost (gaps older than the reorder horizon).
    pub reports_lost: u64,
    /// Watermark regressions the collector refused (0 in a healthy run).
    pub watermark_regressions: u64,
}

/// Runs the fleet soak: base workload, telemetry shipping every round,
/// loss + duplication on every message (reports included), and an
/// availability drop on resource 0 over the configured window.
pub fn run_fleet_soak(config: &FleetSoakConfig, hub: &TelemetryHub) -> FleetSoakReport {
    let problem = base_workload();
    let original_availability = problem.resources()[0].availability();
    let mut dist = DistributedLla::with_telemetry(
        problem,
        DistConfig {
            network: NetworkModel::lossy(0.5, 1.0, config.loss)
                .with_duplication(config.duplication),
            seed: config.seed,
            report_cadence: ROUND,
            ..DistConfig::default()
        },
        DistTelemetry::from_hub(hub),
    );
    let plan = FaultPlan::new()
        .set_availability(
            config.overload_start(),
            0,
            original_availability * config.availability_drop,
        )
        .set_availability(config.overload_end(), 0, original_availability);
    dist.schedule_faults(&plan);
    dist.run_rounds(config.warmup_rounds + config.overload_rounds + config.recovery_rounds);

    let firing = dist.firing_alerts();
    let alerts: Vec<Event> =
        hub.events.snapshot().into_iter().filter(|e| e.kind == "alert").collect();
    let view = dist.fleet_view().expect("the soak runs with shipping on");
    let panel = crate::render::fleet_panel(view, &alerts, 100);
    let (merged, stale, lost, regressions) = (
        view.reports_merged(),
        view.reports_stale(),
        view.reports_lost(),
        view.watermark_regressions(),
    );
    // Reconstruct the rule's Firing episodes as (entered, left) virtual-time
    // intervals; an episode still open at the end of the soak runs to +inf.
    let mut episodes: Vec<(f64, f64)> = Vec::new();
    let mut entered: Option<f64> = None;
    for e in &alerts {
        if e.field("rule").map(ToString::to_string) != Some("fleet-overload".to_owned()) {
            continue;
        }
        match e.field("state").map(ToString::to_string).as_deref() {
            Some("firing") => entered = entered.or(Some(e.time)),
            Some("resolved") => {
                if let Some(start) = entered.take() {
                    episodes.push((start, e.time));
                }
            }
            _ => {}
        }
    }
    if let Some(start) = entered {
        episodes.push((start, f64::INFINITY));
    }
    let window = (config.overload_start(), config.overload_end() + ROUND);
    let overlapping: Vec<(f64, f64)> = episodes
        .iter()
        .copied()
        .filter(|&(entered, left)| entered <= window.1 && left >= window.0)
        .collect();
    let fired_during_overload = !overlapping.is_empty();
    let resolved_after_recovery =
        fired_during_overload && overlapping.iter().all(|&(_, left)| left.is_finite());
    FleetSoakReport {
        panel,
        alerts,
        fired_during_overload,
        resolved_after_recovery,
        firing_at_end: firing.len(),
        reports_merged: merged,
        reports_stale: stale,
        reports_lost: lost,
        watermark_regressions: regressions,
    }
}

impl FleetSoakReport {
    /// The alert timeline as JSONL (one event per line), the byte-stable
    /// artifact the golden CI test diffs.
    pub fn alerts_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.alerts {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_soak_fires_and_resolves_the_overload_alert() {
        let hub = TelemetryHub::recording();
        let report = run_fleet_soak(&FleetSoakConfig::default(), &hub);
        assert!(report.fired_during_overload, "alerts: {}", report.alerts_jsonl());
        assert!(report.resolved_after_recovery, "alerts: {}", report.alerts_jsonl());
        assert_eq!(report.watermark_regressions, 0, "watermarks are monotone per agent");
        assert!(report.reports_merged > 0, "reports flow despite loss");
        assert!(report.reports_stale > 0, "duplication must exercise seq dedupe");
    }

    #[test]
    fn fleet_soak_alert_timeline_is_byte_deterministic() {
        let config = FleetSoakConfig::default();
        let hub_a = TelemetryHub::recording();
        let a = run_fleet_soak(&config, &hub_a);
        let hub_b = TelemetryHub::recording();
        let b = run_fleet_soak(&config, &hub_b);
        assert_eq!(a.alerts_jsonl(), b.alerts_jsonl());
        assert_eq!(a.panel, b.panel);
        assert_eq!(hub_a.events.to_jsonl(), hub_b.events.to_jsonl());
    }
}
