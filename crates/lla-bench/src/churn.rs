//! Chaos soak: Poisson task churn composed with the fault-injection
//! layer (crash/restart, a partition, message loss) on the virtual
//! clock, plus a deliberate overload phase exercising utility-aware
//! load shedding.
//!
//! The driver runs one [`DistributedLla`] deployment through three
//! stages:
//!
//! 1. **Warmup** — the base workload converges under loss.
//! 2. **Churn** — seeded Poisson join/leave events splice tasks in and
//!    out of the *running* deployment while a controller crashes and
//!    restarts and a partition separates it from a resource. After every
//!    membership event the driver measures rounds-to-reconverge against
//!    a centralized oracle solved on that epoch's exact problem.
//! 3. **Shedding** — heavy elastic tasks join until demand exceeds
//!    capacity; an [`OverloadMonitor`] watching the dense allocation
//!    evicts the lowest-marginal-utility elastic task (with hysteresis)
//!    until the survivors are schedulable again.
//!
//! Everything runs on the seeded virtual runtime, so the emitted
//! `churn_sweep.csv` is byte-deterministic for a fixed config.

use crate::Series;
use lla_core::{
    select_victim, shed_ranking, AllocationSettings, Optimizer, OptimizerConfig, OverloadConfig,
    OverloadMonitor, ResourceId, StepSizePolicy, TaskBuilder, UtilityFn,
};
use lla_dist::{
    Address, DistConfig, DistTelemetry, DistributedLla, FaultPlan, NetworkModel, RobustnessConfig,
};
use lla_telemetry::{Diagnosis, DiagnosticsEngine, Event as TelemetryEvent, TelemetryHub};
use lla_workloads::base_workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One protocol round of virtual time (ms), matching
/// [`DistConfig::round_length`]'s default.
const ROUND: f64 = 10.0;

/// Rounds per re-convergence probe: the gap against the oracle is
/// sampled once per chunk, so `rounds_to_reconverge` is quantized to
/// this resolution.
const PROBE_CHUNK: usize = 10;

/// Tuning for [`run_churn_soak`].
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Seed for the churn process (event spacing, join/leave coin,
    /// departure choice) *and* the network.
    pub seed: u64,
    /// Message loss probability on every link.
    pub loss: f64,
    /// Number of Poisson churn (join/leave) events.
    pub churn_events: usize,
    /// Mean inter-event spacing in rounds (exponential).
    pub mean_gap_rounds: f64,
    /// Per-event cap on rounds to re-converge; exceeding it is reported
    /// as a failure by the soak tests.
    pub reconverge_cap_rounds: usize,
    /// Relative utility gap against the per-epoch oracle counted as
    /// "re-converged".
    pub gap_tolerance: f64,
    /// Schedule the chaos faults (controller crash/restart plus a
    /// controller↔resource partition) during the churn stage.
    pub with_faults: bool,
    /// Run the overload/shedding stage after the churn stage.
    pub with_shedding: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 2008,
            loss: 0.10,
            churn_events: 20,
            mean_gap_rounds: 60.0,
            reconverge_cap_rounds: 2_000,
            gap_tolerance: 0.05,
            with_faults: true,
            with_shedding: true,
        }
    }
}

/// What happened at one soak event (one CSV row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SoakEventKind {
    /// A task joined the running deployment (slot).
    Join(usize),
    /// A task left voluntarily (slot).
    Leave(usize),
    /// The overload monitor evicted a task (slot).
    Shed(usize),
}

impl SoakEventKind {
    /// Numeric code used in the CSV (1 join, 2 leave, 3 shed).
    pub fn code(&self) -> f64 {
        match self {
            SoakEventKind::Join(_) => 1.0,
            SoakEventKind::Leave(_) => 2.0,
            SoakEventKind::Shed(_) => 3.0,
        }
    }

    /// The protocol slot the event concerns.
    pub fn slot(&self) -> usize {
        match self {
            SoakEventKind::Join(s) | SoakEventKind::Leave(s) | SoakEventKind::Shed(s) => *s,
        }
    }
}

/// Per-event measurement.
#[derive(Debug, Clone, Copy)]
pub struct SoakEvent {
    /// What happened.
    pub kind: SoakEventKind,
    /// Protocol round at which the event was injected.
    pub round: usize,
    /// Topology epoch after the event.
    pub epoch: u64,
    /// Live tasks after the event.
    pub n_tasks: usize,
    /// Rounds until the deployment's utility re-entered
    /// [`ChurnConfig::gap_tolerance`] of the per-epoch oracle
    /// (quantized to [`PROBE_CHUNK`]); `None` if the cap elapsed first.
    pub rounds_to_reconverge: Option<usize>,
    /// Deployment utility at re-convergence (or at the cap).
    pub u_dist: f64,
    /// Centralized oracle utility for this epoch's problem.
    pub u_oracle: f64,
    /// `|u_dist − u_oracle| / max(|u_oracle|, 1)` at re-convergence.
    pub gap: f64,
}

/// Everything the soak produced.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Per-event measurements, in injection order (churn then shedding).
    pub events: Vec<SoakEvent>,
    /// The CSV series (`churn_sweep.csv`).
    pub series: Series,
    /// Slots evicted by the shedder, in eviction order.
    pub shed_slots: Vec<usize>,
    /// `true` iff an evicted slot was ever re-admitted or the monitor
    /// acted during its own cool-down — the flapping the hysteresis
    /// must prevent.
    pub flapped: bool,
    /// Largest re-convergence gap over all events that did converge.
    pub max_settled_gap: f64,
    /// Total protocol rounds the soak ran.
    pub rounds: usize,
    /// Convergence diagnosis over the soak's final sample window (one
    /// [`DiagSample`](lla_telemetry::DiagSample) per [`PROBE_CHUNK`]
    /// rounds): a healthy soak ends `converging` — the classifier sees
    /// through the churn it just survived.
    pub diagnosis: Diagnosis,
}

impl SoakReport {
    /// Whether every event re-converged within the cap.
    pub fn all_reconverged(&self) -> bool {
        self.events.iter().all(|e| e.rounds_to_reconverge.is_some())
    }
}

/// A light churn task: a two-subtask chain with small demand, elastic
/// linear utility, and per-index variety in resources, deadline, and
/// slope. Index-determined, so the candidate stream is reproducible.
fn churn_task(idx: usize) -> TaskBuilder {
    let r1 = idx % 8;
    let r2 = (idx + 3) % 8;
    let mut b = TaskBuilder::new(format!("churn-{idx}"));
    b.subtask("a", ResourceId::new(r1), 0.4 + (idx % 3) as f64 * 0.2);
    b.subtask("b", ResourceId::new(r2), 0.4);
    b.edge(0, 1).expect("two-subtask chain");
    let ct = 120.0 + (idx % 5) as f64 * 20.0;
    // Small demand and a strongly positive offset: the deployment's
    // total utility stays far from zero across every epoch, so the
    // relative oracle gap stays well-conditioned.
    b.critical_time(ct)
        .utility(UtilityFn::Linear { offset: 3.0 * ct, slope: -(0.4 + (idx % 4) as f64 * 0.2) });
    b
}

/// A heavy elastic task used to force overload in the shedding stage:
/// large demand on one resource, slope rising with the index so the
/// shed order (lowest marginal utility first) is `idx` order.
fn heavy_task(idx: usize) -> TaskBuilder {
    let mut b = TaskBuilder::new(format!("heavy-{idx}"));
    b.subtask("h", ResourceId::new(idx % 2), 40.0);
    // Near-flat utility: high share, negligible marginal value — these
    // are unambiguously the cheapest evictions in the shed ranking, so
    // the soak can assert the shedder never touches anything else.
    b.critical_time(60.0)
        .utility(UtilityFn::Linear { offset: 120.0, slope: -(0.02 + idx as f64 * 0.01) });
    b
}

/// Draws an exponential inter-event gap (in rounds, at least 1).
fn exp_gap(rng: &mut StdRng, mean_rounds: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean_rounds).ceil().max(1.0) as usize
}

/// Centralized oracle: the current (dense) problem solved to
/// convergence with the same step policy the deployment uses.
fn oracle_utility(dist: &DistributedLla, policy: StepSizePolicy) -> f64 {
    let mut opt = Optimizer::new(
        dist.problem().clone(),
        OptimizerConfig {
            step_policy: policy,
            allocation: AllocationSettings::default(),
            ..OptimizerConfig::default()
        },
    );
    opt.run_to_convergence(20_000);
    opt.utility()
}

/// Runs chunks of rounds until the utility gap against `u_oracle`
/// drops under `tol`, up to `cap` rounds. Returns
/// `(rounds_run_to_settle, u_dist, gap)`; the first component is `None`
/// when the cap elapsed without settling.
fn settle(
    dist: &mut DistributedLla,
    diag: &mut DiagnosticsEngine,
    u_oracle: f64,
    tol: f64,
    cap: usize,
) -> (Option<usize>, f64, f64) {
    let mut run = 0;
    loop {
        dist.run_rounds(PROBE_CHUNK);
        diag.push(dist.diag_sample());
        run += PROBE_CHUNK;
        let u = dist.utility();
        let gap = (u - u_oracle).abs() / u_oracle.abs().max(1.0);
        if gap < tol {
            return (Some(run), u, gap);
        }
        if run >= cap {
            return (None, u, gap);
        }
    }
}

/// Runs the full chaos soak. See the module docs for the stages.
///
/// The returned [`SoakReport`] carries every assertion input the soak
/// tests need; the function itself never panics on a missed bound, so
/// the harness can also be used to *chart* degradation beyond the
/// asserted envelope.
pub fn run_churn_soak(config: &ChurnConfig) -> SoakReport {
    run_churn_soak_instrumented(config, &TelemetryHub::disabled())
}

/// [`run_churn_soak`] with telemetry: the deployment shares the hub's
/// metrics registry and event log, and the soak driver itself emits a
/// `shed` event (victim slot + marginal utility from the shed ranking)
/// per eviction. Because every event is stamped with the *virtual*
/// clock, two soaks with the same config produce byte-identical JSONL
/// event logs — the determinism the golden-file CI test pins down.
pub fn run_churn_soak_instrumented(config: &ChurnConfig, hub: &TelemetryHub) -> SoakReport {
    let tel = DistTelemetry::from_hub(hub);
    let policy = StepSizePolicy::sign_adaptive(1.0);
    let mut dist = DistributedLla::with_telemetry(
        base_workload(),
        DistConfig {
            step_policy: policy,
            network: NetworkModel::lossy(0.5, 1.0, config.loss),
            seed: config.seed,
            robustness: RobustnessConfig {
                checkpoint_interval: 5.0 * ROUND,
                retransmit_interval: ROUND,
                ..RobustnessConfig::default()
            },
            ..DistConfig::default()
        },
        tel.clone(),
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5bd1_e995);

    // Chaos faults on the absolute virtual clock, placed inside the
    // churn stage: controller 0 crashes for 30 rounds at round 900, and
    // rounds 1500–1560 partition controller 1 from resource 0.
    if config.with_faults {
        let plan = FaultPlan::new()
            .crash_for(900.0 * ROUND, 30.0 * ROUND, Address::Controller(0))
            .partition(
                1_500.0 * ROUND,
                60.0 * ROUND,
                [Address::Controller(1)],
                [Address::Resource(0)],
            );
        dist.schedule_faults(&plan);
    }

    // Online convergence diagnostics, fed one sample per probe chunk so
    // the classifier tracks the soak at the same cadence the oracle-gap
    // probes do. Resource slots never churn here, so the per-resource
    // price evidence stays aligned across epochs.
    let names: Vec<String> =
        dist.problem().resources().iter().map(|r| r.name().to_string()).collect();
    let mut diag = DiagnosticsEngine::new().with_resource_names(names);

    // Stage 1: warmup under loss.
    let warmup = 600;
    for _ in 0..warmup / PROBE_CHUNK {
        dist.run_rounds(PROBE_CHUNK);
        diag.push(dist.diag_sample());
    }
    let mut round = warmup;

    let mut events: Vec<SoakEvent> = Vec::new();
    let mut live_extras: Vec<usize> = Vec::new(); // joined slots still live
    let mut next_candidate = 0usize;

    // Stage 2: Poisson churn.
    for _ in 0..config.churn_events {
        round += {
            let gap = exp_gap(&mut rng, config.mean_gap_rounds);
            dist.run_rounds(gap);
            gap
        };
        // Join when nothing extra is live or on a fair coin; cap the
        // extra population so the workload stays schedulable.
        let join = live_extras.is_empty() || (live_extras.len() < 6 && rng.gen_bool(0.5));
        let kind = if join {
            let builder = churn_task(next_candidate);
            next_candidate += 1;
            let slot = dist.join_task(&builder).expect("churn candidates are valid");
            live_extras.push(slot);
            SoakEventKind::Join(slot)
        } else {
            let pick = rng.gen_range(0..live_extras.len());
            let slot = live_extras.remove(pick);
            dist.leave_task(slot).expect("slot came from the live set");
            SoakEventKind::Leave(slot)
        };
        let u_oracle = oracle_utility(&dist, policy);
        let (settled, u_dist, gap) = settle(
            &mut dist,
            &mut diag,
            u_oracle,
            config.gap_tolerance,
            config.reconverge_cap_rounds,
        );
        round += settled.unwrap_or(config.reconverge_cap_rounds);
        events.push(SoakEvent {
            kind,
            round,
            epoch: dist.epoch(),
            n_tasks: dist.problem().tasks().len(),
            rounds_to_reconverge: settled,
            u_dist,
            u_oracle,
            gap,
        });
    }

    // Stage 3: overload + utility-aware shedding with hysteresis.
    let mut shed_slots = Vec::new();
    let mut flapped = false;
    if config.with_shedding {
        let mut monitor = OverloadMonitor::new(OverloadConfig {
            violation_threshold: 0.05,
            sustain_iters: 30,
            cooldown_iters: 120,
        });
        // Three heavy joins push demand past capacity. Each join starts
        // the admit cool-down, so the monitor cannot evict before
        // prices re-settle (hysteresis on both edges).
        let mut heavy_slots = Vec::new();
        for i in 0..3 {
            let slot = dist.join_task(&heavy_task(i)).expect("heavy candidates are valid");
            monitor.note_admission();
            heavy_slots.push(slot);
            dist.run_rounds(5);
            round += 5;
        }
        // Governed loop: one observation per round, eviction only on a
        // sustained violation outside the cool-down.
        for step in 0..1_500usize {
            dist.run_rounds(1);
            round += 1;
            if (step + 1).is_multiple_of(PROBE_CHUNK) {
                diag.push(dist.diag_sample());
            }
            let lats = dist.allocation();
            let report = lla_core::IterationReport {
                iteration: round,
                utility: dist.utility(),
                max_resource_violation: dist.problem().max_resource_violation(lats.lats()),
                max_path_violation: dist.problem().max_path_violation(lats.lats()),
            };
            if monitor.observe(&report) {
                if monitor.in_cooldown() {
                    flapped = true; // the monitor must never act while cooling
                }
                let Some(victim) = select_victim(dist.problem(), lats.lats()) else {
                    break;
                };
                let marginal = shed_ranking(dist.problem(), lats.lats())
                    .iter()
                    .find(|&&(id, _)| id == victim)
                    .map_or(f64::NAN, |&(_, m)| m);
                let slot = dist.task_slots()[victim.index()];
                if shed_slots.contains(&slot) {
                    flapped = true; // a shed slot can never still be live
                }
                tel.sheds.inc();
                tel.events.emit(
                    TelemetryEvent::new(dist.runtime().now(), "shed")
                        .with("slot", slot)
                        .with("marginal_utility", marginal),
                );
                dist.evict_task(slot).expect("victim is live");
                monitor.note_eviction();
                shed_slots.push(slot);
                live_extras.retain(|&s| s != slot);
                let u_oracle = oracle_utility(&dist, policy);
                let (settled, u_dist, gap) = settle(
                    &mut dist,
                    &mut diag,
                    u_oracle,
                    config.gap_tolerance,
                    config.reconverge_cap_rounds,
                );
                round += settled.unwrap_or(config.reconverge_cap_rounds);
                events.push(SoakEvent {
                    kind: SoakEventKind::Shed(slot),
                    round,
                    epoch: dist.epoch(),
                    n_tasks: dist.problem().tasks().len(),
                    rounds_to_reconverge: settled,
                    u_dist,
                    u_oracle,
                    gap,
                });
            }
        }
        // Quiet tail: a stable system must not keep evicting, and every
        // eviction must have hit a heavy slot (lowest marginal utility),
        // never a light churn task or a base task.
        flapped |= shed_slots.iter().any(|s| !heavy_slots.contains(s));
    }

    let mut series = Series::new(&[
        "event",
        "kind",
        "slot",
        "round",
        "epoch",
        "n_tasks",
        "rounds_to_reconverge",
        "u_dist",
        "u_oracle",
        "gap",
    ]);
    for (i, e) in events.iter().enumerate() {
        series.push(vec![
            i as f64,
            e.kind.code(),
            e.kind.slot() as f64,
            e.round as f64,
            e.epoch as f64,
            e.n_tasks as f64,
            e.rounds_to_reconverge.map_or(-1.0, |r| r as f64),
            e.u_dist,
            e.u_oracle,
            e.gap,
        ]);
    }

    let max_settled_gap = events
        .iter()
        .filter(|e| e.rounds_to_reconverge.is_some())
        .map(|e| e.gap)
        .fold(0.0, f64::max);
    SoakReport {
        events,
        series,
        shed_slots,
        flapped,
        max_settled_gap,
        rounds: round,
        diagnosis: diag.diagnose(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed soak that still exercises every stage, cheap enough
    /// for the default test run (the full soak lives in
    /// `tests/churn_soak.rs` behind `#[ignore]`).
    fn quick_config() -> ChurnConfig {
        ChurnConfig { churn_events: 4, mean_gap_rounds: 30.0, ..ChurnConfig::default() }
    }

    #[test]
    fn quick_soak_reconverges_and_sheds_cleanly() {
        let report = run_churn_soak(&quick_config());
        assert!(report.all_reconverged(), "events: {:#?}", report.events);
        assert!(report.max_settled_gap < 0.05);
        assert!(!report.flapped, "shed slots: {:?}", report.shed_slots);
        assert!(!report.shed_slots.is_empty(), "the overload stage must shed");
        assert_eq!(report.events.len(), 4 + report.shed_slots.len());
        // After shedding restores schedulability the diagnostics window
        // must read as a settled run again.
        assert_eq!(report.diagnosis.verdict, lla_telemetry::Verdict::Converging);
        assert!(report.diagnosis.confident);
        assert_eq!(report.diagnosis.frozen_fraction, 0.0);
    }

    #[test]
    fn soak_is_deterministic() {
        let a = run_churn_soak(&quick_config());
        let b = run_churn_soak(&quick_config());
        assert_eq!(a.series.to_csv(), b.series.to_csv());
    }
}
