//! Measures time-to-convergence on the base workload under the step-size
//! policies of Figure 5, and the Table 1 experiment end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use lla_bench::{paper_optimizer_config, run_table1};
use lla_core::{Aggregation, Optimizer, StepSizePolicy};
use lla_workloads::base_workload;
use std::hint::black_box;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);

    group.bench_function("table1_adaptive_to_convergence", |b| {
        b.iter(|| black_box(run_table1(Aggregation::PathWeighted, 3_000)));
    });

    group.bench_function("base_workload_sign_adaptive", |b| {
        b.iter(|| {
            let mut opt = Optimizer::new(
                base_workload(),
                paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)),
            );
            black_box(opt.run_to_convergence(3_000))
        });
    });

    group.bench_function("base_workload_fixed_gamma1_500_iters", |b| {
        // The paper's gamma=1 configuration needs ~500 iterations.
        b.iter(|| {
            let mut opt =
                Optimizer::new(base_workload(), paper_optimizer_config(StepSizePolicy::fixed(1.0)));
            black_box(opt.run(500))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
