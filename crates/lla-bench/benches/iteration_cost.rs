//! Measures the cost of a single LLA iteration (latency allocation +
//! price computation) — the basis of the paper's §6.4 claim that optimizer
//! overhead is below 1% of total computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lla_bench::paper_optimizer_config;
use lla_core::{Optimizer, StepSizePolicy};
use lla_workloads::{base_workload, prototype_workload, scaled_workload, PrototypeParams};
use std::hint::black_box;

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("iteration");

    group.bench_function("base_workload_3_tasks", |b| {
        let mut opt =
            Optimizer::new(base_workload(), paper_optimizer_config(StepSizePolicy::adaptive(1.0)));
        b.iter(|| black_box(opt.step()));
    });

    for replication in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("scaled_workload_tasks", replication * 3),
            &replication,
            |b, &replication| {
                let mut opt = Optimizer::new(
                    scaled_workload(replication, true),
                    paper_optimizer_config(StepSizePolicy::adaptive(1.0)),
                );
                b.iter(|| black_box(opt.step()));
            },
        );
    }

    group.bench_function("prototype_workload", |b| {
        let mut opt = Optimizer::new(
            prototype_workload(&PrototypeParams::default()),
            paper_optimizer_config(StepSizePolicy::adaptive(1.0)),
        );
        b.iter(|| black_box(opt.step()));
    });

    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
