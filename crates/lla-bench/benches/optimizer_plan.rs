//! Criterion benchmark of the compiled-plan hot path against the naive
//! nested-`Vec` round, on the large-scale random workload.
//!
//! The 10 000-task point lives in the `bench_optimizer` binary (criterion's
//! sampling would make it take minutes); this bench covers 100 and 1 000
//! tasks, which is what CI's smoke job runs in `--test` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lla_bench::naive_round;
use lla_core::{
    Optimizer, OptimizerConfig, PriceState, ShardSpec, ShardedOptimizer, StepSizePolicy,
};
use lla_workloads::{clustered_workload, large_scale_workload};
use std::hint::black_box;

fn config() -> OptimizerConfig {
    OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    }
}

fn bench_optimizer_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_plan");
    group.sample_size(20);

    for tasks in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("naive", tasks), &tasks, |b, &tasks| {
            let problem = large_scale_workload(tasks, 42).expect("valid config");
            let cfg = config();
            let mut prices = PriceState::new(&problem, cfg.step_policy);
            let mut lats = problem.initial_allocation();
            b.iter(|| black_box(naive_round(&problem, &mut prices, &cfg.allocation, &mut lats)));
        });

        group.bench_with_input(BenchmarkId::new("plan", tasks), &tasks, |b, &tasks| {
            let problem = large_scale_workload(tasks, 42).expect("valid config");
            let mut opt = Optimizer::new(problem, config());
            b.iter(|| black_box(opt.step()));
        });

        group.bench_with_input(BenchmarkId::new("sharded_4", tasks), &tasks, |b, &tasks| {
            let (problem, _) = clustered_workload(tasks, 4, 42).expect("valid geometry");
            let spec = ShardSpec::contiguous(tasks, 4);
            let mut opt =
                ShardedOptimizer::new(problem, config(), spec).expect("spec is a partition");
            b.iter(|| black_box(opt.step()));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_optimizer_plan);
criterion_main!(benches);
