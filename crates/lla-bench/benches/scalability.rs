//! Figure 6 as a benchmark: time-to-convergence as the task count scales
//! 3 → 6 → 12 (the paper's claim: convergence speed is independent of
//! the number of tasks; wall time per iteration grows with system size,
//! iteration count does not).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lla_bench::{paper_optimizer_config, run_fig6_point};
use lla_core::{Optimizer, StepSizePolicy};
use lla_workloads::scaled_workload;
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);

    for replication in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("fig6_to_convergence_tasks", replication * 3),
            &replication,
            |b, &replication| {
                b.iter(|| black_box(run_fig6_point(replication, 6_000)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("100_iterations_tasks", replication * 3),
            &replication,
            |b, &replication| {
                b.iter(|| {
                    let mut opt = Optimizer::new(
                        scaled_workload(replication, true),
                        paper_optimizer_config(StepSizePolicy::adaptive(1.0)),
                    );
                    black_box(opt.run(100))
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
