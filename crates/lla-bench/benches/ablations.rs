//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * *sum* vs *path-weighted* utility aggregation (§3.2 — the paper found
//!   no convergence difference);
//! * the paper's congestion-doubling adaptive γ vs our sign-adaptive
//!   extension vs fixed γ;
//! * centralized iteration vs one distributed round (virtual runtime,
//!   perfect network) — the cost of the message-passing deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use lla_bench::paper_optimizer_config;
use lla_core::{Aggregation, Optimizer, StepSizePolicy};
use lla_dist::{DistConfig, DistributedLla};
use lla_workloads::{base_workload, base_workload_with};
use std::hint::black_box;

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_aggregation");
    group.sample_size(10);
    for (name, aggregation) in
        [("sum", Aggregation::Sum), ("path_weighted", Aggregation::PathWeighted)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut opt = Optimizer::new(
                    base_workload_with(aggregation, 2.0),
                    paper_optimizer_config(StepSizePolicy::adaptive(1.0)),
                );
                black_box(opt.run_to_convergence(3_000))
            });
        });
    }
    group.finish();
}

fn bench_step_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_step_policy");
    group.sample_size(10);
    let policies: Vec<(&str, StepSizePolicy)> = vec![
        ("fixed_1", StepSizePolicy::fixed(1.0)),
        ("paper_adaptive", StepSizePolicy::adaptive(1.0)),
        ("sign_adaptive", StepSizePolicy::sign_adaptive(1.0)),
    ];
    for (name, policy) in policies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut opt = Optimizer::new(base_workload(), paper_optimizer_config(policy));
                black_box(opt.run_to_convergence(2_000))
            });
        });
    }
    group.finish();
}

fn bench_distributed_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_distributed");
    group.sample_size(10);

    group.bench_function("centralized_100_iterations", |b| {
        b.iter(|| {
            let mut opt = Optimizer::new(
                base_workload(),
                paper_optimizer_config(StepSizePolicy::adaptive(1.0)),
            );
            black_box(opt.run(100))
        });
    });

    group.bench_function("distributed_100_rounds", |b| {
        b.iter(|| {
            let mut dist = DistributedLla::new(base_workload(), DistConfig::default());
            dist.run_rounds(100);
            black_box(dist.utility())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_step_policy, bench_distributed_overhead);
criterion_main!(benches);
