//! Benchmarks the Figure 8 substrate: simulator throughput and one full
//! closed-loop window (simulate → measure → correct → re-optimize →
//! enact) on the §6.2 prototype workload.

use criterion::{criterion_group, criterion_main, Criterion};
use lla_bench::paper_optimizer_config;
use lla_core::StepSizePolicy;
use lla_sim::{ClosedLoop, ClosedLoopConfig, SimConfig, Simulator};
use lla_workloads::{prototype_workload, PrototypeParams};
use std::hint::black_box;

fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_loop");
    group.sample_size(10);

    group.bench_function("simulator_1s_prototype", |b| {
        let problem = prototype_workload(&PrototypeParams::default());
        let shares = vec![vec![0.26; 3], vec![0.26; 3], vec![0.19; 3], vec![0.19; 3]];
        b.iter(|| {
            let mut sim = Simulator::new(problem.clone(), &shares, SimConfig::default());
            sim.run_until(1_000.0);
            black_box(sim.completions(0))
        });
    });

    group.bench_function("one_window_with_correction", |b| {
        b.iter(|| {
            let mut cl = ClosedLoop::new(
                prototype_workload(&PrototypeParams::default()),
                paper_optimizer_config(StepSizePolicy::sign_adaptive(1.0)),
                SimConfig::default(),
                ClosedLoopConfig {
                    window: 1_000.0,
                    correction_enabled: true,
                    ..Default::default()
                },
            );
            cl.run_windows(1);
            black_box(cl.history().len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_closed_loop);
criterion_main!(benches);
