//! # `lla-baselines` — classical deadline-slicing baselines
//!
//! The paper positions LLA against *deadline slicing* techniques (§7):
//! offline algorithms that split an end-to-end deadline into per-subtask
//! deadlines using simple rules, without modeling resource capacity —
//! "neither BST nor AST account for resource capacity" is exactly the gap
//! LLA fills. This crate implements the three classical slicing families
//! so the difference can be *measured* (see the `baseline_comparison`
//! binary in `lla-bench`):
//!
//! * [`EqualSlice`] — pure deadline division (Bettati & Liu's flow-shop
//!   style / Kao & Garcia-Molina's ED): every subtask on a path gets an
//!   equal fraction of the critical time.
//! * [`EqualSlack`] — equal slack (EQS): each subtask gets its execution
//!   time plus an equal share of the path's laxity.
//! * [`ProportionalSlack`] — proportional / equal flexibility (EQF): the
//!   deadline is divided in proportion to execution times,
//!   `lat_s = c_s · C / Σ c`.
//!
//! All three assign latencies per task in isolation. The [`evaluate`]
//! helper then measures what those latencies would cost on shared
//! resources under the proportional-share model — revealing the capacity
//! violations (or wasted utility) that LLA's price coordination avoids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lla_core::{Problem, Task};

/// An offline per-task deadline-slicing policy.
pub trait DeadlineAssigner {
    /// A short display name for reports.
    fn name(&self) -> &'static str;

    /// Assigns latencies to every subtask of `task`.
    ///
    /// Implementations see one task at a time — deadline slicing is
    /// per-task by construction, which is precisely why it cannot react to
    /// resource contention.
    fn assign_task(&self, task: &Task) -> Vec<f64>;

    /// Assigns latencies for every task of the problem.
    fn assign(&self, problem: &Problem) -> Vec<Vec<f64>> {
        problem.tasks().iter().map(|t| self.assign_task(t)).collect()
    }
}

/// Per-subtask path statistics, conservative over *all* root-to-leaf
/// paths containing the subtask.
#[derive(Debug, Clone, Copy)]
struct NodePathStats {
    /// Largest hop count of any path through the node.
    max_len: usize,
    /// Largest summed execution time of any path through the node.
    max_exec: f64,
    /// Smallest per-hop slack `(C − exec(P))/|P|` of any path through the
    /// node.
    min_slack_per_hop: f64,
}

/// Computes [`NodePathStats`] by walking the task's enumerated paths.
///
/// Being conservative per node guarantees that every path constraint
/// holds: each policy's per-path sum telescopes to at most `C` when every
/// member uses the worst path it lies on.
fn per_node_stats(task: &Task) -> Vec<NodePathStats> {
    let mut stats =
        vec![
            NodePathStats { max_len: 1, max_exec: 0.0, min_slack_per_hop: f64::INFINITY };
            task.len()
        ];
    for path in task.graph().paths() {
        let len = path.len();
        let exec: f64 = path.subtasks().iter().map(|&v| task.subtasks()[v].exec_time()).sum();
        let slack_per_hop = ((task.critical_time() - exec) / len as f64).max(0.0);
        for &v in path.subtasks() {
            let s = &mut stats[v];
            s.max_len = s.max_len.max(len);
            s.max_exec = s.max_exec.max(exec);
            s.min_slack_per_hop = s.min_slack_per_hop.min(slack_per_hop);
        }
    }
    for s in &mut stats {
        if s.min_slack_per_hop == f64::INFINITY {
            s.min_slack_per_hop = 0.0;
        }
        s.max_exec = s.max_exec.max(f64::MIN_POSITIVE);
    }
    stats
}

/// Pure deadline division: `lat_s = C / n` where `n` is the length of the
/// *longest* path through the subtask (the conservative choice on DAGs).
///
/// Bettati & Liu's even distribution for flow shops; Kao &
/// Garcia-Molina's *effective deadline* strategy degenerates to this when
/// execution times are ignored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualSlice;

impl DeadlineAssigner for EqualSlice {
    fn name(&self) -> &'static str {
        "equal-slice"
    }

    fn assign_task(&self, task: &Task) -> Vec<f64> {
        per_node_stats(task).into_iter().map(|s| task.critical_time() / s.max_len as f64).collect()
    }
}

/// Equal slack (EQS): `lat_s = c_s + (C − Σc)/n`, every subtask receiving
/// the same absolute laxity; on DAGs each subtask uses the smallest
/// per-hop slack among its paths (conservative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualSlack;

impl DeadlineAssigner for EqualSlack {
    fn name(&self) -> &'static str {
        "equal-slack"
    }

    fn assign_task(&self, task: &Task) -> Vec<f64> {
        per_node_stats(task)
            .into_iter()
            .zip(task.subtasks())
            .map(|(s, sub)| sub.exec_time() + s.min_slack_per_hop)
            .collect()
    }
}

/// Proportional division / equal flexibility (EQF):
/// `lat_s = c_s · C / Σc` — laxity distributed in proportion to execution
/// time; on DAGs each subtask scales by its heaviest path (conservative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProportionalSlack;

impl DeadlineAssigner for ProportionalSlack {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn assign_task(&self, task: &Task) -> Vec<f64> {
        per_node_stats(task)
            .into_iter()
            .zip(task.subtasks())
            .map(|(s, sub)| sub.exec_time() * task.critical_time() / s.max_exec)
            .collect()
    }
}

/// What a latency assignment costs on the shared resources.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Policy name.
    pub name: &'static str,
    /// Total system utility of the assignment.
    pub utility: f64,
    /// Whether both constraint families hold (0.1% tolerance).
    pub feasible: bool,
    /// `max_r (usage_r − B_r)`.
    pub max_resource_violation: f64,
    /// `max_p (path_latency/C − 1)`.
    pub max_path_violation: f64,
    /// Per-resource share sums.
    pub usage: Vec<f64>,
}

/// Evaluates a slicing policy's assignment on the shared-resource model.
pub fn evaluate(problem: &Problem, assigner: &dyn DeadlineAssigner) -> BaselineReport {
    let lats = assigner.assign(problem);
    BaselineReport {
        name: assigner.name(),
        utility: problem.total_utility(&lats),
        feasible: problem.is_feasible(&lats, 1e-3),
        max_resource_violation: problem.max_resource_violation(&lats),
        max_path_violation: problem.max_path_violation(&lats),
        usage: problem.resources().iter().map(|r| problem.resource_usage(r.id(), &lats)).collect(),
    }
}

/// All three baselines, boxed, for sweep-style comparisons.
pub fn all_baselines() -> Vec<Box<dyn DeadlineAssigner>> {
    vec![Box::new(EqualSlice), Box::new(EqualSlack), Box::new(ProportionalSlack)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{Resource, ResourceId, ResourceKind, TaskBuilder, TaskId};
    use lla_workloads::base_workload;

    fn chain_problem(c: f64, execs: &[f64]) -> Problem {
        let resources: Vec<Resource> = (0..execs.len())
            .map(|i| Resource::new(ResourceId::new(i), ResourceKind::Cpu))
            .collect();
        let mut b = TaskBuilder::new("t");
        let idx: Vec<usize> = execs
            .iter()
            .enumerate()
            .map(|(i, &e)| b.subtask(format!("s{i}"), ResourceId::new(i), e))
            .collect();
        b.chain(&idx).unwrap();
        b.critical_time(c);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn equal_slice_divides_deadline_evenly() {
        let p = chain_problem(30.0, &[2.0, 4.0, 6.0]);
        let lats = EqualSlice.assign(&p);
        assert_eq!(lats[0], vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn equal_slack_gives_same_laxity() {
        let p = chain_problem(30.0, &[2.0, 4.0, 6.0]);
        let lats = EqualSlack.assign(&p);
        // Slack = 30 - 12 = 18, 6 each.
        assert_eq!(lats[0], vec![8.0, 10.0, 12.0]);
        // Path exactly meets the deadline.
        assert!((lats[0].iter().sum::<f64>() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_scales_with_exec_time() {
        let p = chain_problem(30.0, &[2.0, 4.0, 6.0]);
        let lats = ProportionalSlack.assign(&p);
        assert_eq!(lats[0], vec![5.0, 10.0, 15.0]);
        assert!((lats[0].iter().sum::<f64>() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn all_baselines_meet_path_constraints_in_isolation() {
        // Deadline slicing always satisfies the *path* constraint (that is
        // its one job); capacity is where it fails.
        let p = base_workload();
        for b in all_baselines() {
            let report = evaluate(&p, b.as_ref());
            assert!(
                report.max_path_violation <= 1e-9,
                "{}: path violation {}",
                report.name,
                report.max_path_violation
            );
        }
    }

    #[test]
    fn baselines_overload_congested_resources() {
        // On the paper's base workload (all resources near congestion at
        // the optimum), capacity-blind slicing over-commits resources.
        let p = base_workload();
        let any_infeasible = all_baselines()
            .iter()
            .map(|b| evaluate(&p, b.as_ref()))
            .any(|r| r.max_resource_violation > 0.0);
        assert!(any_infeasible, "expected at least one baseline to overload a resource");
    }

    #[test]
    fn fanout_uses_heaviest_path() {
        // 0 -> 1 (light leaf), 0 -> 2 (heavy leaf).
        let resources: Vec<Resource> =
            (0..3).map(|i| Resource::new(ResourceId::new(i), ResourceKind::Cpu)).collect();
        let mut b = TaskBuilder::new("t");
        let root = b.subtask("r", ResourceId::new(0), 2.0);
        let light = b.subtask("l", ResourceId::new(1), 1.0);
        let heavy = b.subtask("h", ResourceId::new(2), 7.0);
        b.edge(root, light).unwrap();
        b.edge(root, heavy).unwrap();
        b.critical_time(18.0);
        let p = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();

        let lats = ProportionalSlack.assign(&p);
        // Root's heaviest path is (root, heavy): exec 9 => lat = 2*18/9 = 4.
        assert!((lats[0][0] - 4.0).abs() < 1e-12);
        // Heavy leaf: 7*18/9 = 14; root + heavy = 18 = C exactly.
        assert!((lats[0][2] - 14.0).abs() < 1e-12);
        // Light leaf sees its own path (exec 3): 1*18/3 = 6; root+light=10 < C.
        assert!((lats[0][1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn reports_are_complete() {
        let p = base_workload();
        let r = evaluate(&p, &EqualSlack);
        assert_eq!(r.usage.len(), p.resources().len());
        assert!(r.utility.is_finite());
        assert_eq!(r.name, "equal-slack");
    }
}
