//! Fault-injection integration tests: the distributed deployment must
//! survive controller crashes (restoring from checkpoints), degrade
//! gracefully through network partitions (hold, don't oscillate), and
//! disseminate availability changes reliably over a lossy network.

use lla::core::{
    AllocationSettings, Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind,
    TaskBuilder, TaskId,
};
use lla::dist::agents::TaskController;
use lla::dist::{
    Address, ControlPlaneAgent, DistConfig, DistributedLla, FaultPlan, NetworkModel,
    RobustnessConfig,
};

/// Two tasks sharing two CPUs, comfortably schedulable.
fn problem() -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(c);
        tasks.push(b.build(TaskId::new(i)).unwrap());
    }
    Problem::new(resources, tasks).unwrap()
}

fn settings() -> AllocationSettings {
    AllocationSettings { throughput_floor: false, ..Default::default() }
}

fn config() -> DistConfig {
    DistConfig { allocation: settings(), ..DistConfig::default() }
}

fn centralized_optimum() -> f64 {
    let mut opt = Optimizer::new(
        problem(),
        OptimizerConfig { allocation: settings(), ..OptimizerConfig::default() },
    );
    opt.run_to_convergence(5_000);
    opt.utility()
}

/// Acceptance (a): a controller crashes mid-run and restarts from its
/// periodic checkpoint; the system re-converges to within 2% of the
/// centralized optimizer's utility.
#[test]
fn controller_crash_restart_reconverges_from_checkpoint() {
    let mut dist = DistributedLla::new(
        problem(),
        DistConfig {
            robustness: RobustnessConfig {
                checkpoint_interval: 50.0, // every 5 controller ticks
                ..Default::default()
            },
            ..config()
        },
    );
    // Crash controller 0 at t=4005 (mid-round 401), 10 rounds of downtime.
    let plan = FaultPlan::new().crash_for(4_005.0, 100.0, Address::Controller(0));
    dist.schedule_faults(&plan);

    dist.run_rounds(400);
    assert!(!dist.checkpoints().is_empty(), "checkpoints must be written");
    let before_crash = dist.utility();

    dist.run_rounds(400);
    assert_eq!(dist.runtime().crashes(), 1);
    assert_eq!(dist.runtime().restarts(), 1);
    assert!(!dist.runtime().is_crashed(Address::Controller(0)));

    let reference = centralized_optimum();
    let achieved = dist.utility();
    let gap = (achieved - reference).abs() / reference.abs().max(1.0);
    assert!(
        gap < 0.02,
        "post-restart utility {achieved} not within 2% of centralized {reference} (gap {gap})"
    );
    // Re-convergence, not just survival: the final utility is as good as
    // the pre-crash operating point.
    assert!(
        achieved >= before_crash - 0.02 * before_crash.abs().max(1.0),
        "restart lost utility: {achieved} vs pre-crash {before_crash}"
    );
    assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
}

/// A crash *without* checkpoints also re-converges (resource agents
/// re-learn latencies from traffic; the controller restarts from the
/// initial point) — it just starts from further away.
#[test]
fn controller_crash_without_checkpoint_still_reconverges() {
    let mut dist = DistributedLla::new(problem(), config());
    let plan = FaultPlan::new().crash_for(4_005.0, 100.0, Address::Controller(0));
    dist.schedule_faults(&plan);
    dist.run_rounds(1_200);

    let reference = centralized_optimum();
    let gap = (dist.utility() - reference).abs() / reference.abs().max(1.0);
    assert!(gap < 0.02, "gap {gap} after checkpoint-less restart");
    assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
}

/// Acceptance (b): during a partition, controllers past the staleness TTL
/// freeze — they hold their last-known-good latencies instead of
/// integrating stale prices — and recover within bounded virtual rounds
/// after the partition heals.
#[test]
fn partition_degrades_gracefully_and_recovers_after_heal() {
    let mut dist = DistributedLla::new(
        problem(),
        DistConfig {
            robustness: RobustnessConfig {
                staleness_ttl: 30.0, // 3 rounds
                ..Default::default()
            },
            ..config()
        },
    );
    // Partition all controllers from all resources for 40 rounds.
    let controllers = vec![Address::Controller(0), Address::Controller(1)];
    let resources = vec![Address::Resource(0), Address::Resource(1)];
    let plan = FaultPlan::new().partition(5_000.0, 400.0, controllers, resources);
    dist.schedule_faults(&plan);

    dist.run_rounds(500);
    let converged = dist.utility();

    // Let the TTL expire (staleness > 30 ms from t=5030 on), then verify
    // the hold: the allocation must not move at all for the rest of the
    // partition — graceful degradation, not oscillation.
    dist.run_rounds(6);
    let held = dist.allocation().lats().to_vec();
    for _ in 0..34 {
        dist.run_rounds(1);
        assert_eq!(
            dist.allocation().lats(),
            held.as_slice(),
            "degraded controllers must hold last-known-good latencies"
        );
    }
    for t in 0..2 {
        let ctl = dist
            .runtime_mut()
            .actor_as::<TaskController>(Address::Controller(t))
            .expect("controller registered");
        assert!(ctl.is_degraded(), "controller {t} should be degraded mid-partition");
        assert!(ctl.degraded_ticks() > 0);
    }
    assert!(dist.runtime().dropped_by_partition() > 0);

    // Heal at t=5400; bounded recovery: within 50 rounds the system is
    // back at the converged utility and the controllers left degraded
    // mode.
    dist.run_rounds(50);
    for t in 0..2 {
        let ctl = dist
            .runtime_mut()
            .actor_as::<TaskController>(Address::Controller(t))
            .expect("controller registered");
        assert!(!ctl.is_degraded(), "controller {t} should have recovered after heal");
    }
    let recovered = dist.utility();
    let gap = (recovered - converged).abs() / converged.abs().max(1.0);
    assert!(gap < 0.005, "recovery gap {gap}: {recovered} vs pre-partition {converged}");
    assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
}

/// Acceptance (c): an availability update disseminated through the
/// control plane over a 30%-loss network converges to the same allocation
/// as the idealized lossless out-of-band path.
#[test]
fn reliable_availability_update_survives_heavy_loss() {
    let mut lossy = DistributedLla::new(
        problem(),
        DistConfig { network: NetworkModel::lossy(0.5, 1.0, 0.3), seed: 17, ..config() },
    );
    let mut ideal = DistributedLla::new(problem(), config());

    lossy.run_rounds(800);
    ideal.run_rounds(800);
    // Reliable dissemination under loss vs out-of-band bypass.
    lossy.set_resource_availability(ResourceId::new(0), 0.5).unwrap();
    ideal.set_resource_availability_bypass(ResourceId::new(0), 0.5).unwrap();
    lossy.run_rounds(3_000);
    ideal.run_rounds(3_000);

    assert!(lossy.messages_dropped() > 1_000, "loss must actually occur");
    let cp = lossy
        .runtime_mut()
        .actor_as::<ControlPlaneAgent>(Address::ControlPlane)
        .expect("control plane registered");
    assert_eq!(cp.sequences_assigned(), 1);
    assert_eq!(cp.pending_updates(), 0, "every agent must have acked the update");

    // The update reached the agents: the lossy run's allocation respects
    // the degraded availability…
    let usage = lossy.problem().resource_usage(ResourceId::new(0), lossy.allocation().lats());
    assert!(usage <= 0.5 + 1e-2, "usage {usage} exceeds degraded availability");

    // …and lands on the same allocation as the lossless bypass path.
    let a = lossy.allocation();
    let b = ideal.allocation();
    for (t, (la, lb)) in a.lats().iter().zip(b.lats().iter()).enumerate() {
        for (s, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
            let rel = (x - y).abs() / y.abs().max(1.0);
            assert!(rel < 0.05, "task {t} subtask {s}: lossy {x} vs ideal {y} (rel {rel})");
        }
    }
    let ugap = (lossy.utility() - ideal.utility()).abs() / ideal.utility().abs().max(1.0);
    assert!(ugap < 0.02, "utility gap {ugap} between reliable-lossy and ideal paths");
}

/// Duplicated and reordered control traffic must not double-apply
/// updates: sequence-number dedup makes at-least-once delivery apply
/// exactly once, and the protocol still converges.
#[test]
fn duplication_and_reordering_do_not_break_convergence() {
    let mut dist = DistributedLla::new(
        problem(),
        DistConfig {
            network: NetworkModel::lossy(0.5, 1.0, 0.1)
                .with_duplication(0.2)
                .with_reordering(0.05, 25.0),
            seed: 29,
            ..config()
        },
    );
    dist.run_rounds(800);
    dist.set_resource_availability(ResourceId::new(0), 0.5).unwrap();
    dist.run_rounds(3_000);
    assert!(dist.runtime().messages_duplicated() > 100, "duplication must be active");

    let usage = dist.problem().resource_usage(ResourceId::new(0), dist.allocation().lats());
    assert!(usage <= 0.5 + 1e-2, "usage {usage} exceeds degraded availability");
    assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
}
