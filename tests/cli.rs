//! End-to-end tests of the `lla-cli` binary against the shipped workload
//! spec files.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lla-cli"))
}

#[test]
fn check_summarizes_spec() {
    let out = cli().args(["check", "examples/workloads/trading.lla"]).output().expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 resources, 2 tasks"), "unexpected summary: {stdout}");
    assert!(stdout.contains("trading"));
}

#[test]
fn optimize_converges_and_reports() {
    let out = cli()
        .args(["optimize", "examples/workloads/trading.lla", "--iters", "20000"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("converged: true"), "did not converge: {stdout}");
    assert!(stdout.contains("feasible true"));
    assert!(stdout.contains("strategy"));
}

#[test]
fn schedulability_verdict_prints() {
    let out = cli()
        .args(["schedulability", "examples/workloads/patient_monitoring.lla"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Schedulable"), "verdict: {stdout}");
}

#[test]
fn simulate_runs_windows() {
    let out = cli()
        .args([
            "simulate",
            "examples/workloads/patient_monitoring.lla",
            "--windows",
            "3",
            "--window",
            "500",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Three window rows plus the header.
    assert_eq!(stdout.lines().count(), 4, "output: {stdout}");
}

#[test]
fn telemetry_reports_health() {
    let out = cli()
        .args(["telemetry", "examples/workloads/trading.lla", "--iters", "20000"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("health: OK"), "unhealthy snapshot: {stdout}");
    assert!(stdout.contains("converged=true"), "snapshot: {stdout}");
    assert!(stdout.contains("kkt residuals:"), "snapshot: {stdout}");
}

#[test]
fn telemetry_prometheus_format_exposes_metrics() {
    let out = cli()
        .args(["telemetry", "examples/workloads/trading.lla", "--format", "prometheus"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lla_opt_iterations_total"), "metrics: {stdout}");
    assert!(stdout.contains("lla_opt_utility"), "metrics: {stdout}");
}

#[test]
fn telemetry_json_format_is_one_object() {
    let out = cli()
        .args([
            "telemetry",
            "examples/workloads/trading.lla",
            "--iters",
            "20000",
            "--format",
            "json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim().starts_with('{') && stdout.trim().ends_with('}'), "json: {stdout}");
    assert!(stdout.contains("\"converged\": true"), "json: {stdout}");
    assert!(stdout.contains("\"resources\": ["), "json: {stdout}");

    let out = cli()
        .args(["telemetry", "examples/workloads/trading.lla", "--format", "bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn telemetry_diagnose_exit_code_gates_on_verdict() {
    // Healthy run: the diagnosis prints and the process exits 0.
    let out = cli()
        .args(["telemetry", "examples/workloads/trading.lla", "--iters", "20000", "--diagnose"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("diagnosis: converging"), "diagnosis: {stdout}");

    // Overloaded deployment: the verdict is diverging and the exit code
    // is 3 — distinct from usage errors (2) and I/O failures (1), so CI
    // gates can alert on an unhealthy run specifically.
    let spec = std::env::temp_dir().join("lla_cli_overloaded.lla");
    std::fs::write(
        &spec,
        "resource cpu kind=cpu lag=1.0 availability=1.0\n\
         task a critical=50 utility=inelastic umax=100 sharpness=8 trigger=periodic period=50\n\
         \x20 subtask s resource=cpu exec=40.0\n\
         task b critical=50 utility=inelastic umax=100 sharpness=8 trigger=periodic period=50\n\
         \x20 subtask s resource=cpu exec=40.0\n\
         task c critical=50 utility=inelastic umax=100 sharpness=8 trigger=periodic period=50\n\
         \x20 subtask s resource=cpu exec=40.0\n",
    )
    .expect("write spec");
    let out = cli()
        .args(["telemetry", spec.to_str().expect("utf-8 path"), "--iters", "600", "--diagnose"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(3), "diagnosis: {stdout}");
    assert!(stdout.contains("diagnosis: diverging"), "diagnosis: {stdout}");
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn missing_file_fails_cleanly() {
    let out = cli().args(["check", "no/such/file.lla"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
}

#[test]
fn bad_arguments_print_usage() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = cli().args(["optimize"]).output().expect("spawn");
    assert!(!out.status.success());

    let out = cli()
        .args(["optimize", "examples/workloads/trading.lla", "--policy", "bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn fixed_policy_flag_parses() {
    let out = cli()
        .args([
            "optimize",
            "examples/workloads/patient_monitoring.lla",
            "--policy",
            "fixed=2.5",
            "--iters",
            "200",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}
