//! Integration tests for the telemetry layer: health exposition from a
//! converged Table 1 run, byte-determinism of the chaos-soak event
//! stream and of the causal-trace export (both pinned against committed
//! golden files so any accidental nondeterminism or schema drift fails
//! CI), and full-stack Prometheus text-format conformance over every
//! metric the optimizer and the distributed runtime register.

use lla_bench::churn::{run_churn_soak_instrumented, ChurnConfig};
use lla_bench::run_table1_health;
use lla_core::{
    Aggregation, Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind,
    TaskBuilder, TaskId,
};
use lla_dist::{DistConfig, DistTelemetry, DistributedLla, NetworkModel};
use lla_telemetry::{SpanRecorder, TelemetryHub};

/// The small-but-eventful soak used for the golden event log: a couple of
/// churn events close together, faults on, shedding on.
fn golden_config() -> ChurnConfig {
    ChurnConfig {
        seed: 2008,
        loss: 0.10,
        churn_events: 2,
        mean_gap_rounds: 25.0,
        reconverge_cap_rounds: 2_000,
        gap_tolerance: 0.05,
        with_faults: true,
        with_shedding: true,
    }
}

#[test]
fn table1_health_snapshot_reports_converged_and_feasible() {
    let (result, health) = run_table1_health(Aggregation::PathWeighted, 3_000);
    assert!(health.converged, "Table 1 run must converge");
    assert!(health.feasible, "Table 1 run must be feasible");
    assert!(health.healthy(), "snapshot must be healthy: {health}");
    assert_eq!(health.utility, result.utility, "snapshot utility mirrors the run");
    // The snapshot's KKT residuals are the optimizer's own diagnostics.
    assert!(health.max_stationarity_residual.is_finite());
    assert!(health.max_resource_violation <= 1e-4, "resources over capacity: {health}");
    assert!(health.max_path_violation <= 1e-4, "deadlines violated: {health}");
    // Every resource row carries a live price/usage pair.
    assert!(!health.resources.is_empty());
    for r in &health.resources {
        assert!(r.usage >= 0.0 && r.usage <= r.availability + 1e-9, "resource {}: {r:?}", r.name);
    }
    let rendered = health.to_string();
    assert!(rendered.contains("health: OK"), "render: {rendered}");
}

#[test]
fn chaos_soak_event_stream_is_byte_deterministic() {
    let config = golden_config();
    let hub_a = TelemetryHub::recording();
    let report_a = run_churn_soak_instrumented(&config, &hub_a);
    let hub_b = TelemetryHub::recording();
    let report_b = run_churn_soak_instrumented(&config, &hub_b);

    let jsonl_a = hub_a.events.to_jsonl();
    let jsonl_b = hub_b.events.to_jsonl();
    assert!(!jsonl_a.is_empty(), "instrumented soak must record events");
    assert_eq!(jsonl_a, jsonl_b, "same-seed soak runs must emit identical JSONL");
    assert_eq!(report_a.series.to_csv(), report_b.series.to_csv());
}

#[test]
fn chaos_soak_event_stream_matches_golden_file() {
    let hub = TelemetryHub::recording();
    let _report = run_churn_soak_instrumented(&golden_config(), &hub);
    let jsonl = hub.events.to_jsonl();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/churn_soak_events.jsonl");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test telemetry regenerates it)",
    );
    assert_eq!(
        jsonl, golden,
        "event stream drifted from tests/golden/churn_soak_events.jsonl; \
         if the change is intentional, regenerate the golden file"
    );
}

/// Two tasks over two CPUs — the compact deployment behind the golden
/// causal trace.
fn trace_problem() -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(c);
        tasks.push(b.build(TaskId::new(i)).unwrap());
    }
    Problem::new(resources, tasks).unwrap()
}

/// One seeded, lossy, span-traced run of the compact deployment; returns
/// the Chrome `trace_event` JSON export.
fn traced_run_chrome_json() -> String {
    let hub = TelemetryHub::recording().with_spans(SpanRecorder::recording());
    let mut dist = DistributedLla::with_telemetry(
        trace_problem(),
        DistConfig {
            network: NetworkModel::lossy(0.5, 1.0, 0.2),
            seed: 7,
            ..DistConfig::default()
        },
        DistTelemetry::from_hub(&hub),
    );
    dist.run_rounds(12);
    hub.spans.to_chrome_json()
}

/// Same-seed runs on the virtual clock must export *byte-identical*
/// Chrome traces — spans are stamped with virtual time and recorded in
/// deterministic event order, so there is nothing wall-clock-dependent
/// to drift.
#[test]
fn causal_trace_export_is_byte_deterministic() {
    let a = traced_run_chrome_json();
    let b = traced_run_chrome_json();
    assert!(a.contains("\"traceEvents\""), "export is a Chrome trace: {a}");
    assert!(a.contains("\"name\":\"price\""), "trace must contain price deliveries");
    assert!(a.contains("\"name\":\"drop\""), "the 20% loss model must surface drop spans");
    assert_eq!(a, b, "same-seed traced runs must export identical JSON");
}

/// The committed golden trace pins the export byte-for-byte: schema
/// drift, span-order drift, or any nondeterminism fails here first.
/// Regenerate deliberately with `LLA_REGEN_GOLDEN=1 cargo test --test
/// telemetry`.
#[test]
fn causal_trace_export_matches_golden_file() {
    let json = traced_run_chrome_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dist_trace.json");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test telemetry regenerates it)",
    );
    assert_eq!(
        json, golden,
        "causal trace drifted from tests/golden/dist_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

/// Validates one Prometheus text-format (0.0.4) exposition: every family
/// has exactly one `# HELP` immediately followed by one `# TYPE`, names
/// are legal, every sample parses (bare or labeled — label values are
/// scanned escape-aware, so quotes/backslashes/newlines inside values
/// must be escaped per spec), label sets are unique within a family, and
/// histogram buckets are cumulative and end at `+Inf` with a matching
/// `_count` — per labeled series.
fn assert_prometheus_conformant(text: &str) {
    fn legal_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || "_:".contains(c))
            && name.chars().all(|c| c.is_ascii_alphanumeric() || "_:".contains(c))
    }

    fn legal_label_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }

    /// Splits one sample line into `(metric name, label pairs, value)`,
    /// unescaping label values with an escape-aware scan (a naive
    /// split-on-space or split-on-brace misparses values containing
    /// spaces, braces, or escaped quotes).
    fn parse_sample(line: &str) -> (&str, Vec<(String, String)>, &str) {
        let bytes = line.as_bytes();
        let name_end = bytes
            .iter()
            .position(|&b| b == b'{' || b == b' ')
            .unwrap_or_else(|| panic!("sample has no value: {line:?}"));
        let name = &line[..name_end];
        let mut labels = Vec::new();
        let mut i = name_end;
        if bytes[i] == b'{' {
            i += 1;
            loop {
                let label_start = i;
                while i < bytes.len() && bytes[i] != b'=' {
                    i += 1;
                }
                let label = &line[label_start..i];
                assert!(legal_label_name(label), "illegal label name {label:?} in {line:?}");
                i += 1; // '='
                assert_eq!(bytes.get(i), Some(&b'"'), "label value must be quoted: {line:?}");
                i += 1;
                // UTF-8 continuation bytes never collide with ASCII, so a
                // byte scan for the structural characters is safe.
                let mut value = Vec::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1);
                            match esc {
                                Some(b'\\') => value.push(b'\\'),
                                Some(b'"') => value.push(b'"'),
                                Some(b'n') => value.push(b'\n'),
                                other => panic!("illegal escape \\{other:?} in {line:?}"),
                            }
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            value.push(b);
                            i += 1;
                        }
                        None => panic!("unterminated label value in {line:?}"),
                    }
                }
                let value = String::from_utf8(value).expect("exposition is UTF-8");
                labels.push((label.to_owned(), value));
                match bytes.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => {
                        i += 1;
                        break;
                    }
                    other => panic!("expected ',' or '}}', got {other:?} in {line:?}"),
                }
            }
        }
        assert_eq!(bytes.get(i), Some(&b' '), "value must follow the series in {line:?}");
        (name, labels, &line[i + 1..])
    }

    let mut families = 0usize;
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        // Family header: HELP first ...
        let rest = line
            .strip_prefix("# HELP ")
            .unwrap_or_else(|| panic!("expected a # HELP line opening a family, got: {line:?}"));
        let (name, help) = rest.split_once(' ').expect("HELP carries name and text");
        assert!(legal_name(name), "illegal metric name {name:?}");
        assert!(!help.is_empty(), "{name}: HELP text must not be empty");
        // ... then TYPE ...
        let type_line = lines.next().expect("TYPE follows HELP");
        let rest = type_line
            .strip_prefix("# TYPE ")
            .unwrap_or_else(|| panic!("{name}: expected # TYPE, got {type_line:?}"));
        let (type_name, kind) = rest.split_once(' ').expect("TYPE carries name and kind");
        assert_eq!(type_name, name, "TYPE must name the same family as HELP");
        assert!(["counter", "gauge", "histogram"].contains(&kind), "{name}: unknown TYPE {kind:?}");
        // ... then the samples, until the next family starts.
        let mut samples = Vec::new();
        while let Some(&next) = lines.peek() {
            if next.starts_with('#') {
                break;
            }
            samples.push(lines.next().expect("peeked"));
        }
        assert!(!samples.is_empty(), "{name}: family exposes no samples");
        match kind {
            "counter" | "gauge" => {
                let mut seen: Vec<Vec<(String, String)>> = Vec::new();
                for s in &samples {
                    let (n, labels, v) = parse_sample(s);
                    assert_eq!(n, name, "{name}: sample must name its family, got {s:?}");
                    assert!(
                        labels.windows(2).all(|w| w[0].0 < w[1].0),
                        "{name}: label names must be sorted and unique, got {s:?}"
                    );
                    assert!(!seen.contains(&labels), "{name}: duplicate label set {s:?}");
                    seen.push(labels);
                    if kind == "counter" {
                        v.parse::<u64>().unwrap_or_else(|_| {
                            panic!(
                                "{name}: counter value must be a non-negative integer, got {v:?}"
                            )
                        });
                    } else {
                        assert!(
                            v.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&v),
                            "{name}: unparseable gauge value {v:?}"
                        );
                    }
                }
            }
            "histogram" => {
                // One bucket/sum/count book per labeled series: the label
                // set minus `le` identifies the series.
                #[derive(Default)]
                struct Series {
                    cumulative: Option<u64>,
                    last_le: f64,
                    saw_inf: bool,
                    sum: Option<f64>,
                    count: Option<u64>,
                }
                let mut series: Vec<(Vec<(String, String)>, Series)> = Vec::new();
                fn book(
                    series: &mut Vec<(Vec<(String, String)>, Series)>,
                    key: Vec<(String, String)>,
                ) -> usize {
                    match series.iter().position(|(k, _)| *k == key) {
                        Some(i) => i,
                        None => {
                            series.push((
                                key,
                                Series { last_le: f64::NEG_INFINITY, ..Series::default() },
                            ));
                            series.len() - 1
                        }
                    }
                }
                for s in &samples {
                    let (n, mut labels, v) = parse_sample(s);
                    if n == format!("{name}_bucket") {
                        let le_at = labels
                            .iter()
                            .position(|(k, _)| k == "le")
                            .unwrap_or_else(|| panic!("{name}: bucket without le: {s:?}"));
                        let (_, le) = labels.remove(le_at);
                        let idx = book(&mut series, labels);
                        let st = &mut series[idx].1;
                        assert!(!st.saw_inf, "{name}: no bucket may follow +Inf");
                        let c: u64 = v.parse().expect("bucket count");
                        assert!(
                            st.cumulative.is_none_or(|prev| c >= prev),
                            "{name}: bucket counts must be cumulative"
                        );
                        st.cumulative = Some(c);
                        if le == "+Inf" {
                            st.saw_inf = true;
                        } else {
                            let le: f64 = le.parse().expect("finite le bound");
                            assert!(le > st.last_le, "{name}: le bounds must increase");
                            st.last_le = le;
                        }
                    } else if n == format!("{name}_sum") {
                        let idx = book(&mut series, labels);
                        series[idx].1.sum = Some(v.parse::<f64>().expect("sum"));
                    } else if n == format!("{name}_count") {
                        let idx = book(&mut series, labels);
                        series[idx].1.count = Some(v.parse::<u64>().expect("count"));
                    } else {
                        panic!("{name}: unexpected histogram sample {s:?}");
                    }
                }
                for (key, st) in &series {
                    assert!(st.saw_inf, "{name}{key:?}: histogram must end with a +Inf bucket");
                    assert!(st.sum.is_some(), "{name}{key:?}: missing _sum");
                    assert_eq!(
                        st.count.expect("missing _count"),
                        st.cumulative.expect("buckets present"),
                        "{name}{key:?}: _count must equal the +Inf bucket"
                    );
                }
            }
            _ => unreachable!(),
        }
        families += 1;
    }
    assert!(families > 0, "exposition must not be empty");
}

/// Full-stack conformance: run the centralized optimizer *and* a lossy
/// distributed deployment against one shared registry — with the phase
/// profiler's summary gauges published alongside — then validate the
/// entire exposition: every counter, gauge, and histogram any layer
/// registers.
#[test]
fn prometheus_exposition_is_conformant_for_every_registered_metric() {
    let hub = TelemetryHub::recording();
    let mut opt = Optimizer::new(trace_problem(), OptimizerConfig::default());
    opt.attach_telemetry(&hub.metrics);
    let profiler = lla_telemetry::Profiler::recording();
    opt.attach_profiler(&profiler);
    for _ in 0..50 {
        opt.step();
    }
    let mut dist = DistributedLla::with_telemetry(
        trace_problem(),
        DistConfig {
            network: NetworkModel::lossy(0.5, 1.0, 0.2),
            seed: 7,
            report_cadence: 10.0,
            ..DistConfig::default()
        },
        DistTelemetry::from_hub(&hub),
    );
    dist.run_rounds(50);
    profiler.publish_summary(&hub.metrics);

    let text = hub.metrics.prometheus_text();
    assert!(text.contains("lla_dist_messages_sent_total"), "dist family present:\n{text}");
    assert!(
        text.contains("lla_agent_ticks_total{agent=\"controller[0]\"}"),
        "per-agent labeled series present:\n{text}"
    );
    assert!(
        text.contains("lla_fleet_ticks_total{agent="),
        "collector-merged fleet series present:\n{text}"
    );
    assert!(text.contains("# TYPE"), "typed exposition:\n{text}");
    assert!(
        text.contains("lla_profile_self_seconds_allocate"),
        "profiler self-time gauges present:\n{text}"
    );
    assert!(text.contains("lla_profile_calls_step"), "profiler call-count gauges present:\n{text}");
    assert_prometheus_conformant(&text);
    // The disabled registry exposes nothing at all — and trivially
    // conforms.
    assert_eq!(lla_telemetry::MetricsRegistry::disabled().prometheus_text(), "");
}

/// Hostile label *values* — embedded quotes, backslashes, newlines,
/// spaces, braces, commas, even a spoofed `le="…"` — must escape into a
/// conformant exposition: the registry owns the escaping, and the
/// validator's escape-aware scanner must round-trip every value.
#[test]
fn labeled_exposition_with_hostile_label_values_is_conformant() {
    let reg = lla_telemetry::MetricsRegistry::new();
    let hostile = [
        "quote\"quote",
        "back\\slash",
        "multi\nline",
        "spaced out",
        "{brace,le=\"0.5\"} 9",
        "trailing\\",
    ];
    for (i, v) in hostile.iter().enumerate() {
        reg.counter_with("lla_test_hostile_total", "hostile counter labels", &[("agent", v)])
            .add(i as u64 + 1);
        reg.gauge_with("lla_test_hostile_ms", "hostile gauge labels", &[("agent", v)])
            .set(i as f64);
    }
    reg.histogram_with(
        "lla_test_hostile_seconds",
        "hostile histogram labels",
        &[("agent", hostile[0])],
        &[0.1, 1.0],
    )
    .observe(0.5);
    let text = reg.prometheus_text();
    assert_prometheus_conformant(&text);
    assert!(text.contains(r#"agent="quote\"quote""#), "quotes escaped: {text}");
    assert!(text.contains(r#"agent="back\\slash""#), "backslashes escaped: {text}");
    assert!(text.contains(r#"agent="multi\nline""#), "newlines escaped: {text}");
    assert_eq!(text.matches('\n').count(), text.lines().count(), "no raw newline survives");
}

#[test]
fn chaos_soak_counters_match_event_stream() {
    let hub = TelemetryHub::recording();
    let report = run_churn_soak_instrumented(&golden_config(), &hub);
    let text = hub.metrics.prometheus_text();
    // Counter values surface through the Prometheus exposition.
    assert!(text.contains("lla_dist_messages_sent_total"), "metrics: {text}");
    let sheds = report.shed_slots.len() as u64;
    assert_eq!(hub.events.count_kind("shed") as u64, sheds, "shed events mirror the report");
    // Membership churn: every join/leave/evict is both counted and logged.
    let membership_events = hub.events.count_kind("task_join")
        + hub.events.count_kind("task_leave")
        + hub.events.count_kind("task_evict");
    assert!(membership_events > 0, "soak must exercise membership churn");
}
