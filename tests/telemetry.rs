//! Integration tests for the telemetry layer: health exposition from a
//! converged Table 1 run, byte-determinism of the chaos-soak event
//! stream and of the causal-trace export (both pinned against committed
//! golden files so any accidental nondeterminism or schema drift fails
//! CI), and full-stack Prometheus text-format conformance over every
//! metric the optimizer and the distributed runtime register.

use lla_bench::churn::{run_churn_soak_instrumented, ChurnConfig};
use lla_bench::run_table1_health;
use lla_core::{
    Aggregation, Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind,
    TaskBuilder, TaskId,
};
use lla_dist::{DistConfig, DistTelemetry, DistributedLla, NetworkModel};
use lla_telemetry::{SpanRecorder, TelemetryHub};

/// The small-but-eventful soak used for the golden event log: a couple of
/// churn events close together, faults on, shedding on.
fn golden_config() -> ChurnConfig {
    ChurnConfig {
        seed: 2008,
        loss: 0.10,
        churn_events: 2,
        mean_gap_rounds: 25.0,
        reconverge_cap_rounds: 2_000,
        gap_tolerance: 0.05,
        with_faults: true,
        with_shedding: true,
    }
}

#[test]
fn table1_health_snapshot_reports_converged_and_feasible() {
    let (result, health) = run_table1_health(Aggregation::PathWeighted, 3_000);
    assert!(health.converged, "Table 1 run must converge");
    assert!(health.feasible, "Table 1 run must be feasible");
    assert!(health.healthy(), "snapshot must be healthy: {health}");
    assert_eq!(health.utility, result.utility, "snapshot utility mirrors the run");
    // The snapshot's KKT residuals are the optimizer's own diagnostics.
    assert!(health.max_stationarity_residual.is_finite());
    assert!(health.max_resource_violation <= 1e-4, "resources over capacity: {health}");
    assert!(health.max_path_violation <= 1e-4, "deadlines violated: {health}");
    // Every resource row carries a live price/usage pair.
    assert!(!health.resources.is_empty());
    for r in &health.resources {
        assert!(r.usage >= 0.0 && r.usage <= r.availability + 1e-9, "resource {}: {r:?}", r.name);
    }
    let rendered = health.to_string();
    assert!(rendered.contains("health: OK"), "render: {rendered}");
}

#[test]
fn chaos_soak_event_stream_is_byte_deterministic() {
    let config = golden_config();
    let hub_a = TelemetryHub::recording();
    let report_a = run_churn_soak_instrumented(&config, &hub_a);
    let hub_b = TelemetryHub::recording();
    let report_b = run_churn_soak_instrumented(&config, &hub_b);

    let jsonl_a = hub_a.events.to_jsonl();
    let jsonl_b = hub_b.events.to_jsonl();
    assert!(!jsonl_a.is_empty(), "instrumented soak must record events");
    assert_eq!(jsonl_a, jsonl_b, "same-seed soak runs must emit identical JSONL");
    assert_eq!(report_a.series.to_csv(), report_b.series.to_csv());
}

#[test]
fn chaos_soak_event_stream_matches_golden_file() {
    let hub = TelemetryHub::recording();
    let _report = run_churn_soak_instrumented(&golden_config(), &hub);
    let jsonl = hub.events.to_jsonl();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/churn_soak_events.jsonl");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test telemetry regenerates it)",
    );
    assert_eq!(
        jsonl, golden,
        "event stream drifted from tests/golden/churn_soak_events.jsonl; \
         if the change is intentional, regenerate the golden file"
    );
}

/// Two tasks over two CPUs — the compact deployment behind the golden
/// causal trace.
fn trace_problem() -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(c);
        tasks.push(b.build(TaskId::new(i)).unwrap());
    }
    Problem::new(resources, tasks).unwrap()
}

/// One seeded, lossy, span-traced run of the compact deployment; returns
/// the Chrome `trace_event` JSON export.
fn traced_run_chrome_json() -> String {
    let hub = TelemetryHub::recording().with_spans(SpanRecorder::recording());
    let mut dist = DistributedLla::with_telemetry(
        trace_problem(),
        DistConfig {
            network: NetworkModel::lossy(0.5, 1.0, 0.2),
            seed: 7,
            ..DistConfig::default()
        },
        DistTelemetry::from_hub(&hub),
    );
    dist.run_rounds(12);
    hub.spans.to_chrome_json()
}

/// Same-seed runs on the virtual clock must export *byte-identical*
/// Chrome traces — spans are stamped with virtual time and recorded in
/// deterministic event order, so there is nothing wall-clock-dependent
/// to drift.
#[test]
fn causal_trace_export_is_byte_deterministic() {
    let a = traced_run_chrome_json();
    let b = traced_run_chrome_json();
    assert!(a.contains("\"traceEvents\""), "export is a Chrome trace: {a}");
    assert!(a.contains("\"name\":\"price\""), "trace must contain price deliveries");
    assert!(a.contains("\"name\":\"drop\""), "the 20% loss model must surface drop spans");
    assert_eq!(a, b, "same-seed traced runs must export identical JSON");
}

/// The committed golden trace pins the export byte-for-byte: schema
/// drift, span-order drift, or any nondeterminism fails here first.
/// Regenerate deliberately with `LLA_REGEN_GOLDEN=1 cargo test --test
/// telemetry`.
#[test]
fn causal_trace_export_matches_golden_file() {
    let json = traced_run_chrome_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dist_trace.json");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test telemetry regenerates it)",
    );
    assert_eq!(
        json, golden,
        "causal trace drifted from tests/golden/dist_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

/// Validates one Prometheus text-format (0.0.4) exposition: every family
/// has exactly one `# HELP` immediately followed by one `# TYPE`, names
/// are legal, every sample parses, histogram buckets are cumulative and
/// end at `+Inf` with a matching `_count`.
fn assert_prometheus_conformant(text: &str) {
    fn legal_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || "_:".contains(c))
            && name.chars().all(|c| c.is_ascii_alphanumeric() || "_:".contains(c))
    }

    let mut families = 0usize;
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        // Family header: HELP first ...
        let rest = line
            .strip_prefix("# HELP ")
            .unwrap_or_else(|| panic!("expected a # HELP line opening a family, got: {line:?}"));
        let (name, help) = rest.split_once(' ').expect("HELP carries name and text");
        assert!(legal_name(name), "illegal metric name {name:?}");
        assert!(!help.is_empty(), "{name}: HELP text must not be empty");
        // ... then TYPE ...
        let type_line = lines.next().expect("TYPE follows HELP");
        let rest = type_line
            .strip_prefix("# TYPE ")
            .unwrap_or_else(|| panic!("{name}: expected # TYPE, got {type_line:?}"));
        let (type_name, kind) = rest.split_once(' ').expect("TYPE carries name and kind");
        assert_eq!(type_name, name, "TYPE must name the same family as HELP");
        assert!(["counter", "gauge", "histogram"].contains(&kind), "{name}: unknown TYPE {kind:?}");
        // ... then the samples, until the next family starts.
        let mut samples = Vec::new();
        while let Some(&next) = lines.peek() {
            if next.starts_with('#') {
                break;
            }
            samples.push(lines.next().expect("peeked"));
        }
        assert!(!samples.is_empty(), "{name}: family exposes no samples");
        match kind {
            "counter" => {
                assert_eq!(samples.len(), 1, "{name}: one sample per counter");
                let (n, v) = samples[0].split_once(' ').expect("name value");
                assert_eq!(n, name);
                v.parse::<u64>().unwrap_or_else(|_| {
                    panic!("{name}: counter value must be a non-negative integer, got {v:?}")
                });
            }
            "gauge" => {
                assert_eq!(samples.len(), 1, "{name}: one sample per gauge");
                let (n, v) = samples[0].split_once(' ').expect("name value");
                assert_eq!(n, name);
                assert!(
                    v.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&v),
                    "{name}: unparseable gauge value {v:?}"
                );
            }
            "histogram" => {
                let mut cumulative = None;
                let mut last_le = f64::NEG_INFINITY;
                let mut saw_inf = false;
                let (mut sum, mut count) = (None, None);
                for s in &samples {
                    let (n, v) = s.split_once(' ').expect("name value");
                    if let Some(le) = n
                        .strip_prefix(name)
                        .and_then(|r| r.strip_prefix("_bucket{le=\""))
                        .and_then(|r| r.strip_suffix("\"}"))
                    {
                        assert!(!saw_inf, "{name}: no bucket may follow +Inf");
                        let c: u64 = v.parse().expect("bucket count");
                        assert!(
                            cumulative.is_none_or(|prev| c >= prev),
                            "{name}: bucket counts must be cumulative"
                        );
                        cumulative = Some(c);
                        if le == "+Inf" {
                            saw_inf = true;
                        } else {
                            let le: f64 = le.parse().expect("finite le bound");
                            assert!(le > last_le, "{name}: le bounds must increase");
                            last_le = le;
                        }
                    } else if n == format!("{name}_sum") {
                        sum = Some(v.parse::<f64>().expect("sum"));
                    } else if n == format!("{name}_count") {
                        count = Some(v.parse::<u64>().expect("count"));
                    } else {
                        panic!("{name}: unexpected histogram sample {s:?}");
                    }
                }
                assert!(saw_inf, "{name}: histogram must end with a +Inf bucket");
                assert!(sum.is_some(), "{name}: missing _sum");
                assert_eq!(
                    count.expect("missing _count"),
                    cumulative.expect("buckets present"),
                    "{name}: _count must equal the +Inf bucket"
                );
            }
            _ => unreachable!(),
        }
        families += 1;
    }
    assert!(families > 0, "exposition must not be empty");
}

/// Full-stack conformance: run the centralized optimizer *and* a lossy
/// distributed deployment against one shared registry — with the phase
/// profiler's summary gauges published alongside — then validate the
/// entire exposition: every counter, gauge, and histogram any layer
/// registers.
#[test]
fn prometheus_exposition_is_conformant_for_every_registered_metric() {
    let hub = TelemetryHub::recording();
    let mut opt = Optimizer::new(trace_problem(), OptimizerConfig::default());
    opt.attach_telemetry(&hub.metrics);
    let profiler = lla_telemetry::Profiler::recording();
    opt.attach_profiler(&profiler);
    for _ in 0..50 {
        opt.step();
    }
    let mut dist = DistributedLla::with_telemetry(
        trace_problem(),
        DistConfig {
            network: NetworkModel::lossy(0.5, 1.0, 0.2),
            seed: 7,
            ..DistConfig::default()
        },
        DistTelemetry::from_hub(&hub),
    );
    dist.run_rounds(50);
    profiler.publish_summary(&hub.metrics);

    let text = hub.metrics.prometheus_text();
    assert!(text.contains("lla_dist_messages_sent_total"), "dist family present:\n{text}");
    assert!(text.contains("# TYPE"), "typed exposition:\n{text}");
    assert!(
        text.contains("lla_profile_self_seconds_allocate"),
        "profiler self-time gauges present:\n{text}"
    );
    assert!(text.contains("lla_profile_calls_step"), "profiler call-count gauges present:\n{text}");
    assert_prometheus_conformant(&text);
    // The disabled registry exposes nothing at all — and trivially
    // conforms.
    assert_eq!(lla_telemetry::MetricsRegistry::disabled().prometheus_text(), "");
}

#[test]
fn chaos_soak_counters_match_event_stream() {
    let hub = TelemetryHub::recording();
    let report = run_churn_soak_instrumented(&golden_config(), &hub);
    let text = hub.metrics.prometheus_text();
    // Counter values surface through the Prometheus exposition.
    assert!(text.contains("lla_dist_messages_sent_total"), "metrics: {text}");
    let sheds = report.shed_slots.len() as u64;
    assert_eq!(hub.events.count_kind("shed") as u64, sheds, "shed events mirror the report");
    // Membership churn: every join/leave/evict is both counted and logged.
    let membership_events = hub.events.count_kind("task_join")
        + hub.events.count_kind("task_leave")
        + hub.events.count_kind("task_evict");
    assert!(membership_events > 0, "soak must exercise membership churn");
}
