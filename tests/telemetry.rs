//! Integration tests for the telemetry layer: health exposition from a
//! converged Table 1 run, and byte-determinism of the chaos-soak event
//! stream (same seed → identical JSONL, also pinned against a committed
//! golden file so any accidental nondeterminism or schema drift fails CI).

use lla_bench::churn::{run_churn_soak_instrumented, ChurnConfig};
use lla_bench::run_table1_health;
use lla_core::Aggregation;
use lla_telemetry::TelemetryHub;

/// The small-but-eventful soak used for the golden event log: a couple of
/// churn events close together, faults on, shedding on.
fn golden_config() -> ChurnConfig {
    ChurnConfig {
        seed: 2008,
        loss: 0.10,
        churn_events: 2,
        mean_gap_rounds: 25.0,
        reconverge_cap_rounds: 2_000,
        gap_tolerance: 0.05,
        with_faults: true,
        with_shedding: true,
    }
}

#[test]
fn table1_health_snapshot_reports_converged_and_feasible() {
    let (result, health) = run_table1_health(Aggregation::PathWeighted, 3_000);
    assert!(health.converged, "Table 1 run must converge");
    assert!(health.feasible, "Table 1 run must be feasible");
    assert!(health.healthy(), "snapshot must be healthy: {health}");
    assert_eq!(health.utility, result.utility, "snapshot utility mirrors the run");
    // The snapshot's KKT residuals are the optimizer's own diagnostics.
    assert!(health.max_stationarity_residual.is_finite());
    assert!(health.max_resource_violation <= 1e-4, "resources over capacity: {health}");
    assert!(health.max_path_violation <= 1e-4, "deadlines violated: {health}");
    // Every resource row carries a live price/usage pair.
    assert!(!health.resources.is_empty());
    for r in &health.resources {
        assert!(r.usage >= 0.0 && r.usage <= r.availability + 1e-9, "resource {}: {r:?}", r.name);
    }
    let rendered = health.to_string();
    assert!(rendered.contains("health: OK"), "render: {rendered}");
}

#[test]
fn chaos_soak_event_stream_is_byte_deterministic() {
    let config = golden_config();
    let hub_a = TelemetryHub::recording();
    let report_a = run_churn_soak_instrumented(&config, &hub_a);
    let hub_b = TelemetryHub::recording();
    let report_b = run_churn_soak_instrumented(&config, &hub_b);

    let jsonl_a = hub_a.events.to_jsonl();
    let jsonl_b = hub_b.events.to_jsonl();
    assert!(!jsonl_a.is_empty(), "instrumented soak must record events");
    assert_eq!(jsonl_a, jsonl_b, "same-seed soak runs must emit identical JSONL");
    assert_eq!(report_a.series.to_csv(), report_b.series.to_csv());
}

#[test]
fn chaos_soak_event_stream_matches_golden_file() {
    let hub = TelemetryHub::recording();
    let _report = run_churn_soak_instrumented(&golden_config(), &hub);
    let jsonl = hub.events.to_jsonl();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/churn_soak_events.jsonl");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test telemetry regenerates it)",
    );
    assert_eq!(
        jsonl, golden,
        "event stream drifted from tests/golden/churn_soak_events.jsonl; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn chaos_soak_counters_match_event_stream() {
    let hub = TelemetryHub::recording();
    let report = run_churn_soak_instrumented(&golden_config(), &hub);
    let text = hub.metrics.prometheus_text();
    // Counter values surface through the Prometheus exposition.
    assert!(text.contains("lla_dist_messages_sent_total"), "metrics: {text}");
    let sheds = report.shed_slots.len() as u64;
    assert_eq!(hub.events.count_kind("shed") as u64, sheds, "shed events mirror the report");
    // Membership churn: every join/leave/evict is both counted and logged.
    let membership_events = hub.events.count_kind("task_join")
        + hub.events.count_kind("task_leave")
        + hub.events.count_kind("task_evict");
    assert!(membership_events > 0, "soak must exercise membership churn");
}
