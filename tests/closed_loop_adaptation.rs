//! Closed-loop integration: LLA running continuously against the
//! simulator, adapting to model error, workload steps, and resource
//! variation — the "runs continuously and adapts" claims of §1 and §4.4.

use lla::core::{
    Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind, StepSizePolicy,
    TaskBuilder, TaskId, TriggerSpec, UtilityFn,
};
use lla::sim::{ClosedLoop, ClosedLoopConfig, SimConfig, Simulator};
use lla::workloads::{prototype_workload, PrototypeParams};

fn opt_config() -> OptimizerConfig {
    OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    }
}

/// Two pipelines on two CPUs, comfortably loaded.
fn two_pipeline_problem(period: f64) -> Problem {
    let resources: Vec<Resource> = (0..2)
        .map(|i| {
            Resource::new(ResourceId::new(i), ResourceKind::Cpu)
                .with_lag(2.0)
                .with_availability(0.9)
        })
        .collect();
    let mut tasks = Vec::new();
    for i in 0..2 {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 4.0);
        let c = b.subtask("b", ResourceId::new(1), 4.0);
        b.edge(a, c).unwrap();
        b.critical_time(150.0)
            .utility(UtilityFn::negative_latency())
            .trigger(TriggerSpec::Periodic { period });
        tasks.push(b.build(TaskId::new(i)).unwrap());
    }
    Problem::new(resources, tasks).unwrap()
}

#[test]
fn corrections_converge_to_a_fixed_point() {
    let mut cl = ClosedLoop::new(
        prototype_workload(&PrototypeParams::default()),
        opt_config(),
        SimConfig::default(),
        ClosedLoopConfig { window: 5_000.0, correction_enabled: true, ..Default::default() },
    );
    cl.run_windows(14);
    // The last few windows should barely move the corrections.
    let n = cl.history().len();
    let a = &cl.history()[n - 2];
    let b = &cl.history()[n - 1];
    for (ra, rb) in a.corrections.iter().zip(&b.corrections) {
        for (&ea, &eb) in ra.iter().zip(rb) {
            assert!((ea - eb).abs() < 0.5, "correction still drifting: {ea} -> {eb}");
        }
    }
    // And the loop state matches a fresh solve at those corrections.
    let mut fresh = Optimizer::new(prototype_workload(&PrototypeParams::default()), opt_config());
    for (t, row) in b.corrections.iter().enumerate() {
        for (s, &e) in row.iter().enumerate() {
            fresh.set_correction(lla::core::SubtaskId::new(TaskId::new(t), s), e);
        }
    }
    let outcome = fresh.run_to_convergence(20_000);
    assert!(outcome.converged);
    let fresh_shares =
        fresh.allocation().shares(fresh.problem(), &fresh.problem().tasks()[0].clone());
    assert!(
        (fresh_shares[0] - b.shares[0][0]).abs() < 0.02,
        "loop fixed point {} differs from fresh solve {}",
        b.shares[0][0],
        fresh_shares[0]
    );
}

#[test]
fn workload_rate_step_reconverges() {
    // Start at a low rate, then double task 0's arrival rate mid-run: the
    // throughput floor rises, and the loop must reallocate without
    // accumulating deadline misses in the steady state.
    let mut cl = ClosedLoop::new(
        two_pipeline_problem(40.0),
        opt_config(),
        SimConfig::default(),
        ClosedLoopConfig { window: 2_000.0, correction_enabled: true, ..Default::default() },
    );
    cl.run_windows(5);
    let misses_before: f64 = cl.history().last().unwrap().miss_rate.iter().sum();
    assert!(misses_before < 0.01);
    cl.run_windows(8);
    let last = cl.history().last().unwrap();
    for &m in &last.miss_rate {
        assert!(m < 0.02, "steady state must not miss deadlines: {:?}", last.miss_rate);
    }
}

#[test]
fn availability_drop_is_absorbed() {
    // Simulator keeps running while the optimizer loses resource capacity;
    // the new allocation still fits and the loop remains stable.
    let problem = two_pipeline_problem(40.0);
    let mut opt = Optimizer::new(problem.clone(), opt_config());
    opt.run_to_convergence(5_000);
    let shares0: Vec<Vec<f64>> =
        problem.tasks().iter().map(|t| opt.allocation().shares(&problem, t)).collect();
    let mut sim = Simulator::new(problem.clone(), &shares0, SimConfig::default());
    sim.run_for(5_000.0);
    assert_eq!(sim.dropped(), 0);

    // CPU 1 loses a third of its capacity.
    opt.set_resource_availability(ResourceId::new(1), 0.6).unwrap();
    let outcome = opt.run_to_convergence(20_000);
    assert!(outcome.converged, "must re-converge after availability drop: {outcome:?}");
    let shares1: Vec<Vec<f64>> =
        opt.problem().tasks().iter().map(|t| opt.allocation().shares(opt.problem(), t)).collect();
    let usage: f64 = shares1.iter().map(|row| row[1]).sum();
    assert!(usage <= 0.6 + 1e-6, "new allocation must fit the degraded capacity: {usage}");
    sim.enact_shares(&shares1);
    sim.reset_stats();
    sim.run_for(10_000.0);
    for t in 0..2 {
        assert!(sim.completions(t) > 0);
        assert_eq!(sim.deadline_misses(t), 0, "task {t} missed deadlines after adaptation");
    }
}

#[test]
fn bursty_arrivals_are_sustained() {
    // Bursts stress the generalization that jobs may be released without
    // waiting for previous ones: queues must drain between bursts.
    let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0)];
    let mut b = TaskBuilder::new("bursty");
    b.subtask("s", ResourceId::new(0), 2.0);
    b.critical_time(200.0)
        .utility(UtilityFn::negative_latency())
        .trigger(TriggerSpec::Bursty { period: 50.0, burst: 5 });
    let problem = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();

    let mut opt = Optimizer::new(problem.clone(), opt_config());
    opt.run_to_convergence(5_000);
    let shares: Vec<Vec<f64>> =
        problem.tasks().iter().map(|t| opt.allocation().shares(&problem, t)).collect();
    // Throughput floor: 5 jobs per 50ms at 2ms each needs share >= 0.2.
    assert!(shares[0][0] >= 0.2 - 1e-9, "throughput floor violated: {}", shares[0][0]);

    let mut sim = Simulator::new(problem, &shares, SimConfig::default());
    sim.run_for(20_000.0);
    assert_eq!(sim.dropped(), 0, "bursts must be sustained");
    assert!(sim.in_flight() <= 5, "queue must drain between bursts");
    assert_eq!(sim.deadline_misses(0), 0);
}
