//! Integration tests for the closed-loop supervisor: seeded determinism
//! of supervised runs (identical event logs and remediation sequences),
//! bit-identity of a *disabled* supervisor with the plain round driver,
//! and an end-to-end thrash recovery.
//!
//! The determinism properties were sketched for `proptest`; the offline
//! build environment cannot fetch it, so — like
//! `tests/proptest_invariants.rs` — the same properties are driven by an
//! explicit seeded RNG with a fixed case count.

use lla_core::{
    Problem, Resource, ResourceId, ResourceKind, StepSizePolicy, TaskBuilder, TaskId, UtilityFn,
};
use lla_dist::{
    run_supervised, DistConfig, DistTelemetry, DistributedLla, NetworkModel, RemediationKind,
    SupervisorConfig, SupervisorEngine,
};
use lla_telemetry::{TelemetryHub, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 8;

/// Per-property master seeds: independent streams, stable across runs.
fn cases(salt: u64) -> impl Iterator<Item = StdRng> {
    (0..CASES as u64).map(move |i| StdRng::seed_from_u64(salt.wrapping_mul(0x9e37_79b9) + i))
}

/// Three hard-deadline services on one CPU, near congestion: with an
/// over-aggressive step policy this deployment gamma-thrashes, which
/// keeps the supervisor busy enough for determinism checks to bite.
fn thrash_problem() -> Problem {
    let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0)];
    let tasks = (0..3)
        .map(|i| {
            let mut b = TaskBuilder::new(format!("svc-{i}"));
            b.subtask("s", ResourceId::new(0), 10.0);
            b.critical_time(50.0).utility(UtilityFn::smooth_inelastic(100.0, 50.0, 8.0));
            b.build(TaskId::new(i)).expect("static workload")
        })
        .collect();
    Problem::new(resources, tasks).expect("static workload")
}

fn thrash_config(seed: u64, loss: f64) -> DistConfig {
    DistConfig {
        step_policy: StepSizePolicy::SignAdaptive { initial: 4.0, factor: 8.0, max: 2048.0 },
        network: NetworkModel::lossy(0.5, 1.0, loss),
        seed,
        ..DistConfig::default()
    }
}

/// One supervised run: returns the event JSONL, the remediation log
/// rendered to stable strings, and the final utility bits.
fn supervised_run(config: &DistConfig, rounds: usize) -> (String, Vec<String>, u64) {
    let hub = TelemetryHub::recording();
    let mut dist =
        DistributedLla::with_telemetry(thrash_problem(), *config, DistTelemetry::from_hub(&hub));
    let mut sup = SupervisorEngine::new(SupervisorConfig::default());
    run_supervised(&mut dist, &mut sup, rounds);
    let actions = sup
        .actions()
        .iter()
        .map(|r| format!("{}@{}:{:?}/{}", r.kind.as_str(), r.round, r.slot, r.value))
        .collect();
    (hub.events.to_jsonl(), actions, dist.utility().to_bits())
}

/// Two supervised runs from the same seed are bit-identical: same event
/// log bytes, same remediations at the same rounds, same utility.
#[test]
fn same_seed_supervised_runs_are_bit_identical() {
    for mut rng in cases(6) {
        let config = thrash_config(rng.gen(), rng.gen_range(0.0f64..0.15));
        let (jsonl_a, actions_a, bits_a) = supervised_run(&config, 200);
        let (jsonl_b, actions_b, bits_b) = supervised_run(&config, 200);
        assert!(!jsonl_a.is_empty(), "instrumented runs must record events");
        assert_eq!(jsonl_a, jsonl_b, "same-seed supervised runs must emit identical JSONL");
        assert_eq!(actions_a, actions_b, "same-seed runs must apply identical remediations");
        assert_eq!(bits_a, bits_b, "same-seed runs must land on the same utility bits");
    }
}

/// A disabled supervisor is *exactly* `run_rounds`: same event log
/// bytes, same utility bits, zero remediations — supervision costs
/// nothing unless it is switched on.
#[test]
fn disabled_supervisor_matches_plain_run_byte_for_byte() {
    for mut rng in cases(7) {
        let config = thrash_config(rng.gen(), rng.gen_range(0.0f64..0.15));

        let hub_plain = TelemetryHub::recording();
        let mut plain = DistributedLla::with_telemetry(
            thrash_problem(),
            config,
            DistTelemetry::from_hub(&hub_plain),
        );
        plain.run_rounds(200);

        let hub_disabled = TelemetryHub::recording();
        let mut disabled = DistributedLla::with_telemetry(
            thrash_problem(),
            config,
            DistTelemetry::from_hub(&hub_disabled),
        );
        let mut sup = SupervisorEngine::new(SupervisorConfig::disabled());
        let fired = run_supervised(&mut disabled, &mut sup, 200);

        assert!(fired.is_empty(), "a disabled supervisor must not act");
        assert_eq!(sup.checks(), 0, "a disabled supervisor must not even sample");
        assert_eq!(
            hub_plain.events.to_jsonl(),
            hub_disabled.events.to_jsonl(),
            "disabled supervision must leave the event stream untouched"
        );
        assert_eq!(
            plain.utility().to_bits(),
            disabled.utility().to_bits(),
            "disabled supervision must leave the trajectory untouched"
        );
    }
}

/// End-to-end thrash recovery: the calm remediation fires and the run
/// ends converging, where the unsupervised deployment rings forever
/// (that contrast is asserted in the `lla-bench` supervised A/B).
#[test]
fn supervisor_calms_gamma_thrash_end_to_end() {
    let mut dist = DistributedLla::new(thrash_problem(), thrash_config(2008, 0.05));
    // Capacity is not the problem in a thrash: keep the supervisor on the
    // calm remediation alone, as the `lla-bench` A/B does.
    let mut sup =
        SupervisorEngine::new(SupervisorConfig { elastic: false, ..SupervisorConfig::default() });
    let fired = run_supervised(&mut dist, &mut sup, 600);
    assert!(
        fired.iter().any(|r| r.kind == RemediationKind::GammaCalm),
        "thrash must draw at least one gamma-calm: {fired:?}"
    );
    let diagnosis = sup.diagnosis();
    assert_eq!(
        diagnosis.verdict,
        Verdict::Converging,
        "supervised thrash run must end converging: {diagnosis:?}"
    );
}
