//! Integration tests for the hierarchical phase profiler: a disabled
//! handle must leave an optimizer run byte-identical, the seeded Figure 6
//! run's call tree is pinned against a committed golden folded-stack
//! file, worker threads must accumulate into the shared tree under the
//! `parallel` feature, the profiler must attribute nearly all of the
//! step's wall time to its child phases, and the profile frames must
//! merge cleanly into the Chrome trace export.

use lla::core::{Optimizer, OptimizerConfig, ShardSpec, ShardedOptimizer, StepSizePolicy};
use lla::telemetry::{Profiler, SpanRecorder, TraceCtx};
use lla::workloads::scaled_workload;
use lla_bench::run_fig6_profile;

fn config() -> OptimizerConfig {
    OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    }
}

/// A disabled profiler handle is pure control flow: attaching one must
/// not perturb the trajectory, the trace, or the health snapshot by a
/// single byte relative to an un-instrumented run.
#[test]
fn disabled_profiler_leaves_the_run_byte_identical() {
    let problem = scaled_workload(2, true);

    let mut plain = Optimizer::new(problem.clone(), config());
    let plain_outcome = plain.run_to_convergence(3_000);

    let mut profiled = Optimizer::new(problem, config());
    let profiler = Profiler::disabled();
    profiled.attach_profiler(&profiler);
    let profiled_outcome = profiled.run_to_convergence(3_000);

    assert_eq!(plain_outcome.iterations, profiled_outcome.iterations);
    assert_eq!(plain_outcome.final_utility.to_bits(), profiled_outcome.final_utility.to_bits());
    assert_eq!(
        plain.trace().to_csv(),
        profiled.trace().to_csv(),
        "disabled profiler must not perturb the optimizer trace"
    );
    assert_eq!(plain.health_snapshot().to_json(), profiled.health_snapshot().to_json());
    assert!(profiler.snapshot().is_empty(), "disabled profiler records nothing");
}

/// The call-count side of the profile is deterministic (the wall-clock
/// side is not), so the seeded Figure 6 run's folded call stacks are
/// pinned byte-for-byte. Regenerate deliberately with
/// `LLA_REGEN_GOLDEN=1 cargo test --test profiler`.
#[test]
fn fig6_profile_call_tree_matches_golden_file() {
    let snapshot = run_fig6_profile(1, 8_000);
    let folded = snapshot.folded_calls();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig6_profile_calls.folded");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &folded).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test profiler regenerates it)",
    );
    assert_eq!(
        folded, golden,
        "profile call tree drifted from tests/golden/fig6_profile_calls.folded; \
         if the change is intentional, regenerate the golden file"
    );
}

/// The profiler must attribute nearly all of the optimizer step's
/// inclusive wall time to its child phases (allocate / price /
/// lagrangian / trace) — unattributed self time is scope-management
/// overhead plus the step's own glue. Release builds clear 95%; debug
/// builds pay relatively more per guard, so the floor is looser there.
#[test]
fn fig6_profile_attributes_step_time_to_phases() {
    let snapshot = run_fig6_profile(4, 8_000);
    let attributed =
        snapshot.attributed_fraction("step").expect("step scope present with nonzero time");
    let floor = if cfg!(debug_assertions) { 0.80 } else { 0.95 };
    assert!(
        attributed >= floor,
        "profiler attributes only {:.1}% of step time to phases (floor {:.0}%):\n{}",
        attributed * 100.0,
        floor * 100.0,
        snapshot.folded_ns()
    );
    // Every phase the step executes shows up with the step's call count.
    let step_calls = snapshot.frames.iter().find(|f| f.path == "step").expect("step frame").calls;
    for phase in ["step;allocate", "step;price", "step;lagrangian", "step;trace"] {
        let f = snapshot
            .frames
            .iter()
            .find(|f| f.path == phase)
            .unwrap_or_else(|| panic!("missing frame {phase}"));
        assert_eq!(f.calls, step_calls, "{phase} runs once per step");
    }
}

/// Under the `parallel` feature the sharded allocation phase runs in
/// rayon workers; `scope_in` re-anchors those threads so per-shard work
/// lands under the coordinator round in the one shared tree. (Without
/// the feature the same scopes run sequentially — the assertions hold
/// either way, which is the point: one tree, same shape.)
#[test]
fn sharded_round_profile_accumulates_across_threads() {
    const ROUNDS: u64 = 40;
    let problem = scaled_workload(4, true);
    let shards = 4;
    let mut sharded = ShardedOptimizer::new(
        problem.clone(),
        config(),
        ShardSpec::contiguous(problem.tasks().len(), shards),
    )
    .expect("contiguous spec partitions the tasks");
    let profiler = Profiler::recording();
    sharded.attach_profiler(&profiler);
    for _ in 0..ROUNDS {
        sharded.step();
    }
    let snapshot = profiler.snapshot();
    let calls = |path: &str| {
        snapshot
            .frames
            .iter()
            .find(|f| f.path == path)
            .unwrap_or_else(|| panic!("missing frame {path}:\n{}", snapshot.folded_calls()))
            .calls
    };
    assert_eq!(calls("round"), ROUNDS);
    assert_eq!(calls("round;allocation_phase"), ROUNDS);
    assert_eq!(
        calls("round;allocation_phase;shard_local"),
        ROUNDS * shards as u64,
        "every shard's local step must land in the shared tree"
    );
    assert_eq!(calls("round;coordinator"), ROUNDS);
    // Broadcast runs once per coordinated resource per round.
    let broadcast = calls("round;coordinator;broadcast");
    assert!(
        broadcast >= ROUNDS && broadcast % ROUNDS == 0,
        "broadcast fires a fixed number of times per round, got {broadcast} over {ROUNDS} rounds"
    );
}

/// Profile frames ride along in the Chrome trace export as their own
/// `profiler` track without disturbing the span events.
#[test]
fn profile_frames_merge_into_chrome_trace() {
    let spans = SpanRecorder::recording();
    spans.span("tick", "agent", 0.0, 1.0, TraceCtx::NONE);
    let profiler = Profiler::recording();
    {
        let _outer = profiler.scope("round");
        let _inner = profiler.scope("allocate");
    }
    let json = spans.to_chrome_json_with_profile(&profiler.snapshot());
    assert!(json.contains("\"traceEvents\""), "chrome trace shape:\n{json}");
    assert!(json.contains("\"name\":\"tick\""), "span events retained:\n{json}");
    assert!(json.contains("\"name\":\"profiler\""), "profiler track named:\n{json}");
    assert!(json.contains("\"name\":\"round\""), "profile frames exported:\n{json}");
    assert!(json.contains("\"calls\":1"), "frame args carry call counts:\n{json}");
    // The plain export is untouched — byte-compatible with the golden.
    assert!(!spans.to_chrome_json().contains("profiler"));
}
