//! The compiled iteration plan must be indistinguishable from the naive
//! nested-`Vec` code paths it replaces: identical allocations, identical
//! price trajectories, and diagnostics (utility, usage, Lagrangian, KKT)
//! matching to 1e-12 on randomly generated problems — and the opt-in
//! parallel allocation kernel must be *bit-identical* to the sequential
//! one across long seeded runs, including a membership epoch mid-run.

use lla_core::{
    allocate_latencies, kkt_report, lagrangian_value, AllocationSettings, Plan, PriceState,
    Problem, ResourceId, StepSizePolicy, TaskBuilder, TaskId,
};
use lla_workloads::{large_scale_workload, RandomWorkloadConfig, TaskShape};

fn close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0), "{what}: {a} vs {b}");
}

/// Runs `rounds` LLA rounds twice — once through the naive nested-`Vec`
/// path, once through the compiled plan — and checks every intermediate
/// quantity against the other side.
fn check_equivalence(problem: &Problem, rounds: usize) {
    let settings = AllocationSettings::default();
    let policy = StepSizePolicy::sign_adaptive(1.0);

    let mut naive_prices = PriceState::new(problem, policy);
    let mut naive_lats = problem.initial_allocation();

    let plan = Plan::lower(problem, &settings);
    let mut scratch = plan.scratch();
    let mut plan_prices = PriceState::new(problem, policy);
    let mut plan_lats = problem.initial_allocation();

    for round in 0..rounds {
        naive_lats = allocate_latencies(problem, &naive_prices, &settings, &naive_lats);
        naive_prices.update(problem, &naive_lats);

        plan.flatten_into(&plan_lats, scratch.prev_mut());
        plan.allocate_into(&plan_prices, &mut scratch);
        plan.unflatten_into(scratch.lats(), &mut plan_lats);
        plan.price_update(&mut plan_prices, &mut scratch);

        assert_eq!(naive_lats, plan_lats, "allocation diverged at round {round}");
        assert_eq!(naive_prices, plan_prices, "prices diverged at round {round}");

        close(
            problem.total_utility(&naive_lats),
            plan.total_utility(scratch.lats()),
            "total utility",
        );
        for (r, res) in problem.resources().iter().enumerate() {
            close(
                problem.resource_usage(res.id(), &naive_lats),
                scratch.usage()[r],
                "resource usage",
            );
        }
        close(
            problem.max_resource_violation(&naive_lats),
            plan.max_resource_violation(scratch.usage()),
            "max resource violation",
        );
        close(
            problem.max_path_violation(&naive_lats),
            plan.max_path_violation(scratch.path_lat()),
            "max path violation",
        );

        if round % 5 == 0 {
            close(
                lagrangian_value(problem, &naive_lats, &naive_prices),
                plan.lagrangian_value(scratch.lats(), &plan_prices),
                "Lagrangian",
            );
            let naive_kkt = kkt_report(problem, &naive_lats, &naive_prices, &settings, 1e-9);
            let flat: Vec<f64> = scratch.lats().to_vec();
            let plan_kkt = plan.kkt_report(&flat, &plan_prices, 1e-9, &mut scratch);
            close(
                naive_kkt.max_stationarity_residual,
                plan_kkt.max_stationarity_residual,
                "KKT stationarity",
            );
            close(
                naive_kkt.max_resource_violation,
                plan_kkt.max_resource_violation,
                "KKT resource violation",
            );
            close(naive_kkt.max_path_violation, plan_kkt.max_path_violation, "KKT path violation");
            close(
                naive_kkt.max_complementary_slackness,
                plan_kkt.max_complementary_slackness,
                "KKT complementary slackness",
            );
        }
    }
}

#[test]
fn plan_matches_naive_on_random_problems() {
    for seed in 0..6 {
        let cfg = RandomWorkloadConfig {
            num_tasks: 6,
            num_resources: 10,
            shape: TaskShape::Mixed,
            seed,
            ..Default::default()
        };
        let problem = cfg.generate().expect("valid config");
        check_equivalence(&problem, 25);
    }
}

#[test]
fn plan_matches_naive_on_every_shape_family() {
    for (i, shape) in
        [TaskShape::Chain, TaskShape::FanOut, TaskShape::Diamond, TaskShape::RandomDag]
            .into_iter()
            .enumerate()
    {
        let cfg = RandomWorkloadConfig {
            num_tasks: 5,
            shape,
            target_load: 0.95,
            seed: 100 + i as u64,
            ..Default::default()
        };
        let problem = cfg.generate().expect("valid config");
        check_equivalence(&problem, 20);
    }
}

/// Drives the sequential and threaded allocation kernels side by side for
/// 200 rounds and demands *bitwise* identical latencies and prices every
/// round. A membership epoch (admit one task, retire another) lands at
/// round 100; both sides re-lower the plan and must stay identical after
/// it. `RAYON_NUM_THREADS` forces real multi-worker fan-out even on
/// single-core CI runners.
#[test]
fn parallel_allocation_is_bit_identical_to_sequential() {
    std::env::set_var("RAYON_NUM_THREADS", "5");
    let settings = AllocationSettings::default();
    let policy = StepSizePolicy::sign_adaptive(1.0);

    // Large enough that `allocate_into` takes the parallel path when the
    // feature is on (the workspace test suite enables it).
    let mut problem = large_scale_workload(600, 11).expect("valid config");
    assert!(problem.num_subtasks() >= 2048, "workload must clear the parallel threshold");

    let mut plan = Plan::lower(&problem, &settings);
    let mut seq = plan.scratch();
    let mut par = plan.scratch();
    let mut seq_prices = PriceState::new(&problem, policy);
    let mut par_prices = PriceState::new(&problem, policy);
    let init = problem.initial_allocation();
    plan.flatten_into(&init, seq.prev_mut());
    plan.flatten_into(&init, par.prev_mut());

    for round in 0..200 {
        if round == 100 {
            // Membership epoch: admit a newcomer and retire task 3, then
            // re-lower the plan — exactly what the optimizer does when its
            // epoch check fires.
            let mut b = TaskBuilder::new("newcomer");
            let a = b.subtask("n0", ResourceId::new(0), 2.0);
            let c = b.subtask("n1", ResourceId::new(1), 3.0);
            b.edge(a, c).expect("valid edge");
            b.critical_time(400.0);
            let add = problem.add_task(&b).expect("admission");
            seq_prices = seq_prices.remap(&problem, &add);
            par_prices = par_prices.remap(&problem, &add);
            let remove = problem.remove_task(TaskId::new(3)).expect("retirement");
            seq_prices = seq_prices.remap(&problem, &remove);
            par_prices = par_prices.remap(&problem, &remove);

            assert_ne!(plan.epoch(), problem.epoch(), "mutation must stale the plan");
            plan = Plan::lower(&problem, &settings);
            seq = plan.scratch();
            par = plan.scratch();
            let init = problem.initial_allocation();
            plan.flatten_into(&init, seq.prev_mut());
            plan.flatten_into(&init, par.prev_mut());
        }

        plan.allocate_seq(&seq_prices, &mut seq);
        plan.price_update(&mut seq_prices, &mut seq);

        plan.allocate_into(&par_prices, &mut par);
        plan.price_update(&mut par_prices, &mut par);

        assert_eq!(seq.lats(), par.lats(), "latencies diverged at round {round}");
        assert_eq!(seq_prices, par_prices, "prices diverged at round {round}");

        // Next round allocates from this round's output.
        let l: Vec<f64> = seq.lats().to_vec();
        seq.prev_mut().copy_from_slice(&l);
        let l: Vec<f64> = par.lats().to_vec();
        par.prev_mut().copy_from_slice(&l);
    }
}
