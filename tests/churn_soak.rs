//! Chaos-soak acceptance tests: simultaneous task churn, a controller
//! crash/restart, a partition, and 10% message loss must leave the
//! running deployment re-converging after every membership event, within
//! tolerance of a per-epoch centralized oracle, with utility-aware
//! shedding that never flaps. The emitted CSV must be byte-deterministic.
//!
//! The full soak (≥ 20 churn events) is `#[ignore]`d — CI's nightly job
//! runs it with `cargo test --release -- --ignored`; the default run
//! covers a trimmed configuration of the same driver.

use lla_bench::churn::{run_churn_soak, ChurnConfig, SoakEventKind};

#[test]
fn trimmed_soak_reconverges_within_tolerance() {
    let config = ChurnConfig { churn_events: 6, mean_gap_rounds: 40.0, ..ChurnConfig::default() };
    let report = run_churn_soak(&config);
    assert!(report.all_reconverged(), "events: {:#?}", report.events);
    assert!(report.max_settled_gap < config.gap_tolerance);
    assert!(!report.flapped, "shed slots: {:?}", report.shed_slots);
    assert!(!report.shed_slots.is_empty(), "the overload stage must shed");
}

#[test]
fn soak_csv_is_byte_deterministic() {
    let config = ChurnConfig { churn_events: 3, ..ChurnConfig::default() };
    let a = run_churn_soak(&config).series.to_csv();
    let b = run_churn_soak(&config).series.to_csv();
    assert_eq!(a, b, "churn_sweep.csv must be byte-identical across runs");
    assert!(a.starts_with("event,kind,slot,round,epoch,n_tasks,rounds_to_reconverge,"));
}

/// The full acceptance soak: ≥ 20 join/leave events composed with a
/// crash/restart, a partition, and 10% loss. Nightly-only (`--ignored`).
#[test]
#[ignore = "long soak; run with --ignored (CI nightly job)"]
fn full_soak_twenty_churn_events_with_faults() {
    let config = ChurnConfig::default();
    assert!(config.churn_events >= 20);
    assert!((config.loss - 0.10).abs() < 1e-12);
    let report = run_churn_soak(&config);
    assert!(report.all_reconverged(), "events: {:#?}", report.events);
    assert!(
        report.max_settled_gap < config.gap_tolerance,
        "settled gap {} exceeds {}",
        report.max_settled_gap,
        config.gap_tolerance
    );
    assert!(!report.flapped, "hysteresis must prevent flapping: {:?}", report.shed_slots);
    assert!(!report.shed_slots.is_empty());
    // Every churn event is a join or a leave; every shed event came from
    // the overload stage, after the churn stage finished.
    let churn_end = report
        .events
        .iter()
        .position(|e| matches!(e.kind, SoakEventKind::Shed(_)))
        .unwrap_or(report.events.len());
    assert!(churn_end >= 20, "at least 20 churn events before shedding");
    // Determinism of the full soak, byte for byte.
    let again = run_churn_soak(&config);
    assert_eq!(report.series.to_csv(), again.series.to_csv());
}
