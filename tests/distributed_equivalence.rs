//! Distributed-vs-centralized integration tests: the message-passing
//! deployments must match the centralized optimizer exactly under a
//! perfect synchronous network, and degrade gracefully (not
//! catastrophically) under loss, jitter, and delay.

use lla::core::{AllocationSettings, Optimizer, OptimizerConfig, StepSizePolicy};
use lla::dist::{DistConfig, DistributedLla, NetworkModel, ThreadedLla};
use lla::workloads::{base_workload, RandomWorkloadConfig};

fn settings() -> AllocationSettings {
    AllocationSettings::default()
}

fn centralized_reference(rounds: usize) -> Vec<f64> {
    let mut opt = Optimizer::new(
        base_workload(),
        OptimizerConfig {
            step_policy: StepSizePolicy::adaptive(1.0),
            allocation: settings(),
            ..OptimizerConfig::default()
        },
    );
    opt.run(rounds).into_iter().map(|r| r.utility).collect()
}

#[test]
fn virtual_runtime_matches_centralized_on_base_workload() {
    let rounds = 600;
    let mut dist = DistributedLla::new(
        base_workload(),
        DistConfig {
            step_policy: StepSizePolicy::adaptive(1.0),
            allocation: settings(),
            ..DistConfig::default()
        },
    );
    dist.run_rounds(rounds);
    let reference = centralized_reference(rounds);
    for (round, (d, c)) in dist.utilities().iter().zip(&reference).enumerate() {
        assert!(
            (d - c).abs() < 1e-9,
            "divergence at round {round}: distributed {d} vs centralized {c}"
        );
    }
}

#[test]
fn threaded_runtime_matches_centralized_on_base_workload() {
    let rounds = 400;
    let mut dist = ThreadedLla::new(base_workload(), StepSizePolicy::adaptive(1.0), settings());
    dist.run_rounds(rounds);
    let threaded = dist.utility();
    dist.shutdown().expect("no agent panicked");
    let reference = centralized_reference(rounds);
    assert!(
        (threaded - reference[rounds - 1]).abs() < 1e-9,
        "threaded {threaded} vs centralized {}",
        reference[rounds - 1]
    );
}

#[test]
fn virtual_runtime_matches_centralized_on_random_workloads() {
    for seed in [1u64, 7, 42] {
        let cfg = RandomWorkloadConfig { seed, num_tasks: 3, ..Default::default() };
        let rounds = 300;

        let mut dist = DistributedLla::new(
            cfg.generate().unwrap(),
            DistConfig {
                step_policy: StepSizePolicy::adaptive(1.0),
                allocation: settings(),
                ..DistConfig::default()
            },
        );
        dist.run_rounds(rounds);

        let mut opt = Optimizer::new(
            cfg.generate().unwrap(),
            OptimizerConfig {
                step_policy: StepSizePolicy::adaptive(1.0),
                allocation: settings(),
                ..OptimizerConfig::default()
            },
        );
        opt.run(rounds);
        assert!(
            (dist.utility() - opt.utility()).abs() < 1e-9,
            "seed {seed}: distributed {} vs centralized {}",
            dist.utility(),
            opt.utility()
        );
    }
}

#[test]
fn heavy_loss_degrades_gracefully() {
    // 30% loss with the sign-adaptive policy: the system still lands on
    // the centralized optimum and stays feasible. (The paper's
    // congestion-only heuristic parks ~20% short under the same loss —
    // see the step-policy ablation in EXPERIMENTS.md.)
    let mut reference = Optimizer::new(
        base_workload(),
        OptimizerConfig {
            step_policy: StepSizePolicy::sign_adaptive(1.0),
            allocation: settings(),
            ..OptimizerConfig::default()
        },
    );
    reference.run_to_convergence(5_000);

    let mut dist = DistributedLla::new(
        base_workload(),
        DistConfig {
            step_policy: StepSizePolicy::sign_adaptive(1.0),
            allocation: settings(),
            network: NetworkModel::lossy(0.5, 1.0, 0.3),
            seed: 17,
            ..DistConfig::default()
        },
    );
    dist.run_rounds(4_000);
    assert!(dist.messages_dropped() > 1_000, "loss must actually occur");

    let gap = (dist.utility() - reference.utility()).abs() / reference.utility().abs().max(1.0);
    assert!(gap < 0.02, "30% loss should still reach the optimum: gap {gap}");
    assert!(
        dist.problem().is_feasible(dist.allocation().lats(), 2e-2),
        "allocation under loss must be (near) feasible"
    );
}

#[test]
fn cross_round_delay_still_converges() {
    // Delays exceeding a round: every agent works with stale state.
    let mut dist = DistributedLla::new(
        base_workload(),
        DistConfig {
            step_policy: StepSizePolicy::adaptive(1.0),
            allocation: settings(),
            network: NetworkModel::lossy(15.0, 10.0, 0.0),
            seed: 23,
            round_length: 10.0,
            tick_jitter: 0.0,
            ..DistConfig::default()
        },
    );
    dist.run_rounds(4_000);
    assert!(
        dist.problem().is_feasible(dist.allocation().lats(), 2e-2),
        "stale-price operation must still reach (near) feasibility"
    );
}

#[test]
fn threaded_free_run_is_safe() {
    // Free-running agents on OS threads: the outcome depends on scheduling,
    // so assert robust invariants — the agents actually ran (allocation
    // moved off the initial one) and the utility is sane and bounded.
    let mut dist =
        ThreadedLla::new(base_workload(), StepSizePolicy::sign_adaptive(1.0), settings());
    let initial_alloc = dist.allocation();
    dist.run_free(std::time::Duration::from_micros(200), std::time::Duration::from_millis(700));
    let after_alloc = dist.allocation();
    let after = dist.utility();
    dist.shutdown().expect("no agent panicked");
    assert_ne!(
        initial_alloc.lats(),
        after_alloc.lats(),
        "free-running agents must have produced new allocations"
    );
    assert!(after.is_finite());
    // All latencies remain within their tasks' critical times (the
    // allocator clamps regardless of message staleness).
    let problem = base_workload();
    for task in problem.tasks() {
        for &lat in &after_alloc.lats()[task.id().index()] {
            assert!(lat > 0.0 && lat <= task.critical_time() + 1e-9);
        }
    }
}
