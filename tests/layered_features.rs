//! Integration tests for the layers built around the core algorithm:
//! deadline-slicing baselines, the workload-spec format, and admission
//! control.

use lla::baselines::{all_baselines, evaluate};
use lla::core::{
    probe_admission, AdmissionConfig, AdmissionDecision, Optimizer, OptimizerConfig, ResourceId,
    SchedulabilityConfig, StepSizePolicy, TaskBuilder, UtilityFn,
};
use lla::workloads::{base_workload, RandomWorkloadConfig};

fn opt_config() -> OptimizerConfig {
    OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    }
}

/// LLA's converged utility dominates every baseline that happens to be
/// feasible, across random workloads.
#[test]
fn lla_dominates_feasible_baselines() {
    let mut feasible_baselines_seen = 0;
    for seed in 0..15u64 {
        let cfg = RandomWorkloadConfig { seed, target_load: 0.7, ..Default::default() };
        let problem = cfg.generate().unwrap();
        let mut opt = Optimizer::new(problem.clone(), opt_config());
        let outcome = opt.run_to_convergence(15_000);
        assert!(outcome.converged, "seed {seed} did not converge");
        let lla_utility = opt.utility();

        for baseline in all_baselines() {
            let report = evaluate(&problem, baseline.as_ref());
            if report.feasible {
                feasible_baselines_seen += 1;
                assert!(
                    lla_utility >= report.utility - 1e-6,
                    "seed {seed}: {} beat LLA ({} > {lla_utility})",
                    report.name,
                    report.utility
                );
            }
        }
    }
    assert!(
        feasible_baselines_seen > 0,
        "the comparison needs at least some feasible baseline runs"
    );
}

/// On the paper's congested base workload, no slicing baseline is
/// feasible while LLA converges feasibly — the §7 positioning, asserted.
#[test]
fn baselines_fail_where_lla_succeeds() {
    let problem = base_workload();
    for baseline in all_baselines() {
        let report = evaluate(&problem, baseline.as_ref());
        assert!(
            !report.feasible,
            "{} unexpectedly feasible on the congested base workload",
            report.name
        );
        assert!(report.max_resource_violation > 0.1);
    }
    let mut opt = Optimizer::new(problem, opt_config());
    let outcome = opt.run_to_convergence(5_000);
    assert!(outcome.converged && outcome.feasible);
}

/// The shipped example spec files parse, round-trip, and optimize.
#[test]
fn shipped_spec_files_work() {
    for name in ["trading", "patient_monitoring"] {
        let path = format!("examples/workloads/{name}.lla");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let problem = lla::spec::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        // Round-trip.
        let again = lla::spec::parse(&lla::spec::write(&problem)).expect("round-trip");
        assert_eq!(again.num_subtasks(), problem.num_subtasks());
        // And the workload is actually schedulable.
        let mut opt = Optimizer::new(problem, opt_config());
        let outcome = opt.run_to_convergence(15_000);
        assert!(outcome.converged, "{path} must be schedulable: {outcome:?}");
    }
}

/// Spec round-trips preserve optimization behaviour on random workloads:
/// the re-parsed problem converges to the same utility.
#[test]
fn spec_roundtrip_preserves_optimization() {
    for seed in 0..8u64 {
        let problem = RandomWorkloadConfig { seed, ..Default::default() }.generate().unwrap();
        let reparsed = lla::spec::parse(&lla::spec::write(&problem)).expect("round-trip");

        let mut a = Optimizer::new(problem, opt_config());
        let mut b = Optimizer::new(reparsed, opt_config());
        a.run(400);
        b.run(400);
        assert!(
            (a.utility() - b.utility()).abs() < 1e-9,
            "seed {seed}: utilities diverged after round-trip: {} vs {}",
            a.utility(),
            b.utility()
        );
    }
}

/// Admission control fills the system until the probe starts rejecting,
/// and the last admitted configuration still converges.
#[test]
fn admission_fills_until_capacity() {
    let mut problem = base_workload();
    let admission = AdmissionConfig {
        schedulability: SchedulabilityConfig {
            optimizer: opt_config(),
            max_iters: 8_000,
            ..SchedulabilityConfig::default()
        },
        max_incumbent_degradation: None,
    };

    let candidate = || {
        let mut b = TaskBuilder::new("extra");
        let a = b.subtask("a", ResourceId::new(3), 2.0);
        let c = b.subtask("b", ResourceId::new(7), 2.0);
        b.edge(a, c).unwrap();
        b.critical_time(70.0).utility(UtilityFn::linear_for_deadline(2.0, 70.0));
        b
    };

    let mut admitted = 0;
    for _ in 0..12 {
        match probe_admission(&problem, &candidate(), &admission).unwrap() {
            AdmissionDecision::Admit { problem: expanded, .. } => {
                problem = expanded;
                admitted += 1;
            }
            AdmissionDecision::RejectUnschedulable { .. }
            | AdmissionDecision::RejectDegradation { .. } => break,
        }
    }
    assert!(admitted >= 1, "at least one extra task should fit");
    assert!(admitted < 12, "capacity must eventually reject");

    let mut opt = Optimizer::new(problem, opt_config());
    let outcome = opt.run_to_convergence(10_000);
    assert!(outcome.converged, "system after admissions must still converge: {outcome:?}");
}
