//! End-to-end assertions of the paper's headline evaluation claims, one
//! per table/figure (fast variants of the `lla-bench` experiments).

use lla::core::{
    analyze_schedulability, Aggregation, Optimizer, OptimizerConfig, SchedulabilityConfig,
    SchedulabilityVerdict, StepSizePolicy,
};
use lla::sim::{ClosedLoop, ClosedLoopConfig, SimConfig};
use lla::workloads::{
    base_workload, base_workload_with, prototype_workload, scaled_workload, PrototypeParams,
};

fn paper_config(policy: StepSizePolicy) -> OptimizerConfig {
    OptimizerConfig { step_policy: policy, ..OptimizerConfig::default() }
}

/// Table 1: LLA converges on the base workload with every critical path
/// within 1% of its critical time and all resources near congestion.
#[test]
fn table1_critical_paths_and_congestion() {
    let mut opt = Optimizer::new(base_workload(), paper_config(StepSizePolicy::adaptive(1.0)));
    let outcome = opt.run_to_convergence(3_000);
    assert!(outcome.converged, "base workload must converge: {outcome:?}");

    let alloc = opt.allocation();
    for task in opt.problem().tasks() {
        let cp = alloc.task_latency(task);
        let c = task.critical_time();
        assert!(cp <= c * 1.001, "{}: critical path {cp} exceeds {c}", task.name());
        assert!(cp >= c * 0.99, "{}: critical path {cp} more than 1% below {c}", task.name());
    }
    for r in opt.problem().resources() {
        let usage = opt.problem().resource_usage(r.id(), alloc.lats());
        assert!(usage > 0.95, "resource {} not near congestion: {usage}", r.id());
        assert!(usage <= 1.0 + 1e-3, "resource {} overloaded: {usage}", r.id());
    }
}

/// §5.2: the *sum* aggregation variant converges just like path-weighted
/// (the paper reports no difference in convergence properties).
#[test]
fn sum_variant_converges_like_path_weighted() {
    for aggregation in [Aggregation::Sum, Aggregation::PathWeighted] {
        let mut opt = Optimizer::new(
            base_workload_with(aggregation, 2.0),
            paper_config(StepSizePolicy::sign_adaptive(1.0)),
        );
        let outcome = opt.run_to_convergence(3_000);
        assert!(outcome.converged, "{aggregation:?} must converge");
        assert!(outcome.feasible);
    }
}

/// Figure 5: γ = 10 oscillates with much larger amplitude than γ = 1; the
/// adaptive policy converges while the fixed ones have not.
#[test]
fn fig5_step_size_behaviour() {
    let mut oscillations = Vec::new();
    for gamma in [1.0, 10.0] {
        let mut opt = Optimizer::new(base_workload(), paper_config(StepSizePolicy::fixed(gamma)));
        opt.run(800);
        oscillations.push(opt.trace().utility_oscillation(200));
    }
    assert!(
        oscillations[1] > 10.0 * oscillations[0].max(0.01),
        "gamma=10 must oscillate much harder than gamma=1: {oscillations:?}"
    );

    let mut adaptive = Optimizer::new(base_workload(), paper_config(StepSizePolicy::adaptive(1.0)));
    let outcome = adaptive.run_to_convergence(800);
    assert!(outcome.converged, "adaptive must converge within 800 iterations");
}

/// Figure 6: scaled workloads converge and utility grows linearly with
/// the number of tasks (per task-and-deadline-scale utility constant).
#[test]
fn fig6_linear_utility_scaling() {
    let mut normalized = Vec::new();
    for replication in [1usize, 2, 4] {
        let mut opt = Optimizer::new(
            scaled_workload(replication, true),
            paper_config(StepSizePolicy::sign_adaptive(1.0)),
        );
        let outcome = opt.run_to_convergence(8_000);
        assert!(outcome.converged, "replication {replication} must converge");
        normalized.push(outcome.final_utility / (3.0 * replication as f64 * replication as f64));
    }
    let spread = normalized.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - normalized.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.5,
        "normalized utilities must be near-equal (linear growth): {normalized:?}"
    );
}

/// Figure 7 / §5.4: the unscaled 6-task workload is detected as
/// unschedulable, with share sums far above capacity.
#[test]
fn fig7_unschedulable_detection() {
    let verdict =
        analyze_schedulability(scaled_workload(2, false), &SchedulabilityConfig::default());
    match verdict {
        SchedulabilityVerdict::Unschedulable { max_resource_ratio, .. } => {
            assert!(
                max_resource_ratio > 1.5,
                "resource overload should be pronounced: {max_resource_ratio}"
            );
        }
        other => panic!("expected unschedulable, got {other:?}"),
    }

    // And the schedulable counterpart passes (with a budget that covers
    // the 6-task workload's convergence).
    let schedulable_config = SchedulabilityConfig {
        optimizer: paper_config(StepSizePolicy::sign_adaptive(1.0)),
        max_iters: 5_000,
        ..SchedulabilityConfig::default()
    };
    let verdict = analyze_schedulability(scaled_workload(2, true), &schedulable_config);
    assert!(verdict.is_schedulable(), "scaled critical times must be schedulable: {verdict:?}");
}

/// Figure 8: error correction moves the fast tasks to their minimum
/// sustainable share (0.2) and hands the surplus to the slow tasks (0.25).
#[test]
fn fig8_error_correction_share_migration() {
    let params = PrototypeParams::default();
    let mut cl = ClosedLoop::new(
        prototype_workload(&params),
        paper_config(StepSizePolicy::sign_adaptive(1.0)),
        SimConfig::default(),
        ClosedLoopConfig { window: 5_000.0, correction_enabled: false, ..Default::default() },
    );
    cl.run_windows(2);
    let before = cl.history().last().unwrap().clone();
    cl.set_correction_enabled(true);
    cl.run_windows(14);
    let after = cl.history().last().unwrap();

    // Pre-correction: worst-case model allocation (ours: 0.286/0.164;
    // paper: 0.26/0.19 — model lag handling differs slightly).
    assert!(before.shares[0][0] > 0.25, "fast pre-correction share too low");
    assert!(before.shares[2][0] < 0.20, "slow pre-correction share too high");

    // Post-correction: the paper's converged state, exactly.
    assert!(
        (after.shares[0][0] - params.fast_min_share()).abs() < 0.01,
        "fast share must reach the 0.2 floor: {}",
        after.shares[0][0]
    );
    assert!(
        (after.shares[2][0] - 0.25).abs() < 0.01,
        "slow share must reach 0.25: {}",
        after.shares[2][0]
    );
    // No deadline misses at any point.
    for rec in cl.history() {
        for &m in &rec.miss_rate {
            assert!(m < 0.01, "deadline misses appeared: {:?}", rec.miss_rate);
        }
    }
}

/// §6.4: the optimizer's per-iteration cost is far below the 100ms-scale
/// periods it manages (the paper reports <1% computation overhead).
#[test]
fn optimizer_iteration_is_cheap() {
    let mut opt = Optimizer::new(base_workload(), paper_config(StepSizePolicy::adaptive(1.0)));
    let start = std::time::Instant::now();
    opt.run(1_000);
    let per_iter = start.elapsed().as_secs_f64() / 1_000.0;
    // Debug builds are slow; 1ms/iteration is still <1% of a 100ms period
    // at the paper's once-a-minute re-optimization cadence.
    assert!(per_iter < 1e-3, "iteration took {per_iter}s");
}
