//! Adversarial-input hardening: wire-codec round trips, golden
//! corrupted-frame rejection vectors, wire-mode bit-identity, and
//! corruption-soak survival.
//!
//! Property cases are driven by an explicit seeded RNG (the offline
//! stand-in for `proptest`; see `proptest_invariants.rs` for the idiom).

use lla::core::{
    AllocationSettings, Problem, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId,
};
use lla::dist::codec;
use lla::dist::supervisor::RemediationKind;
use lla::dist::{
    run_supervised, Address, DistConfig, DistTelemetry, DistributedLla, Message, SupervisorConfig,
    SupervisorEngine,
};
use lla::telemetry::{DiagnosticsEngine, TelemetryHub, Verdict};
use lla::workloads::base_workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

fn cases(salt: u64) -> impl Iterator<Item = StdRng> {
    (0..CASES as u64).map(move |i| StdRng::seed_from_u64(salt.wrapping_mul(0x9e37_79b9) + i))
}

fn random_address(rng: &mut StdRng) -> Address {
    match rng.gen_range(0u32..3) {
        0 => Address::Resource(rng.gen_range(0usize..1000)),
        1 => Address::Controller(rng.gen_range(0usize..1000)),
        _ => Address::ControlPlane,
    }
}

/// A random wire-valid message: every field inside its codec domain.
fn random_message(rng: &mut StdRng) -> Message {
    let slot = rng.gen_range(0usize..10_000);
    let epoch = rng.gen_range(0u64..1 << 40);
    let seq = rng.gen_range(0u64..1 << 40);
    match rng.gen_range(0u32..15) {
        0 => Message::Price {
            resource: slot,
            mu: rng.gen_range(0.0..1e9f64),
            congested: rng.gen::<bool>(),
        },
        1 => Message::Latency {
            task: slot,
            subtask: rng.gen_range(0usize..64),
            latency: rng.gen_range(1e-6..1e6f64),
        },
        2 => Message::AvailabilityUpdate {
            resource: slot,
            availability: rng.gen_range(1e-6..=1.0f64),
            seq,
        },
        3 => Message::AvailabilityAck { resource: slot, seq, from: random_address(rng) },
        4 => Message::TaskJoin { slot, epoch, seq },
        5 => Message::TaskLeave { slot, epoch, seq },
        6 => Message::ResourceJoin { slot, epoch, seq },
        7 => Message::ResourceRetire { slot, epoch, seq },
        8 => Message::Evict { slot, epoch, seq },
        9 => Message::MembershipAck { epoch, seq, from: random_address(rng) },
        10 => Message::ReplicaUpdate { slot, replicas: rng.gen_range(1u32..=1 << 16), epoch, seq },
        11 => Message::GammaCalm { max_multiple: rng.gen_range(1.0..1e6f64), seq },
        12 => Message::DualResync { seq },
        13 => Message::CommandAck { seq, from: random_address(rng) },
        _ => {
            // Strictly increasing slots, as the wire format requires.
            let count = rng.gen_range(0usize..=8);
            let mut slots: Vec<u8> = (0..=codec::MAX_WIRE_REPORT_SLOT).collect();
            for i in 0..count {
                let j = rng.gen_range(i..slots.len());
                slots.swap(i, j);
            }
            let mut picked = slots[..count].to_vec();
            picked.sort_unstable();
            Message::TelemetryReport {
                from: random_address(rng),
                seq,
                watermark: rng.gen_range(0.0..1e9f64),
                deltas: picked.into_iter().map(|s| (s, rng.gen_range(0u32..1 << 30))).collect(),
            }
        }
    }
}

/// Every wire-valid message survives `encode → decode → validate`
/// bit-exactly (floats compared by bit pattern via `PartialEq`).
#[test]
fn encode_decode_round_trips_random_messages() {
    for mut rng in cases(0xC0DEC) {
        for _ in 0..50 {
            let msg = random_message(&mut rng);
            let frame = codec::encode(&msg);
            let back =
                codec::decode(&frame).unwrap_or_else(|e| panic!("decode failed for {msg:?}: {e}"));
            assert_eq!(back, msg, "round trip must be bit-exact");
            codec::validate(&back).unwrap_or_else(|e| panic!("validate failed for {msg:?}: {e}"));
        }
    }
}

/// Stream decoding consumes exactly one frame and reports its length, so
/// back-to-back frames in one buffer parse cleanly.
#[test]
fn decode_frame_walks_concatenated_frames() {
    for mut rng in cases(0x57EA) {
        let msgs: Vec<Message> = (0..8).map(|_| random_message(&mut rng)).collect();
        let mut buf = Vec::new();
        for m in &msgs {
            buf.extend_from_slice(&codec::encode(m));
        }
        let mut at = 0;
        for expected in &msgs {
            let (msg, used) = codec::decode_frame(&buf[at..]).expect("stream decode");
            assert_eq!(&msg, expected);
            at += used;
        }
        assert_eq!(at, buf.len(), "stream must consume every byte");
    }
}

/// The committed corruption vectors: `hex-frame<space>expected-cause`
/// lines, one per corruption class. Regenerate with
/// `LLA_REGEN_GOLDEN=1 cargo test --test wire_codec`.
#[test]
fn golden_corrupted_frames_are_rejected_with_stable_causes() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corrupted_frames.txt");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        let mut lines = String::new();
        for (frame, note) in corrupted_vectors() {
            let cause = match codec::decode(&frame).and_then(|m| codec::validate(&m).map(|()| m)) {
                Err(e) => e.cause(),
                Ok(m) => panic!("vector {note:?} unexpectedly decoded to {m:?}"),
            };
            let hex: String = frame.iter().map(|b| format!("{b:02x}")).collect();
            lines.push_str(&format!("{hex} {cause} # {note}\n"));
        }
        std::fs::write(path, &lines).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test wire_codec regenerates it)",
    );
    let mut checked = 0;
    for line in golden.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let hex = parts.next().expect("frame hex");
        let expected_cause = parts.next().expect("expected cause");
        let frame: Vec<u8> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("hex byte"))
            .collect();
        let err = codec::decode(&frame)
            .and_then(|m| codec::validate(&m).map(|()| m))
            .expect_err("corrupted frame must be rejected");
        assert_eq!(err.cause(), expected_cause, "cause drifted for {line}");
        checked += 1;
    }
    assert!(checked >= 8, "golden file must cover every corruption class, got {checked}");
}

/// One deliberately corrupted frame per rejection class (plus a note for
/// the golden file). Each starts from a valid encoding so the vectors
/// stay in sync with the codec.
fn corrupted_vectors() -> Vec<(Vec<u8>, &'static str)> {
    let price = Message::Price { resource: 3, mu: 2.5, congested: true };
    let mut vectors = Vec::new();

    let mut flipped = codec::encode(&price);
    flipped[6] ^= 0x40;
    vectors.push((flipped, "payload bit flip breaks the checksum"));

    let mut truncated = codec::encode(&price);
    truncated.truncate(truncated.len() - 3);
    vectors.push((truncated, "frame cut mid-checksum"));

    vectors.push((codec::encode(&price)[..2].to_vec(), "header shorter than the length prefix"));

    let mut huge_len = codec::encode(&price);
    huge_len[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
    vectors.push((huge_len, "length prefix beyond the body cap"));

    let mut bad_tag = codec::encode(&price);
    bad_tag[4] = 0x7F;
    codec::refresh_checksum(&mut bad_tag);
    vectors.push((bad_tag, "unknown message tag with a valid checksum"));

    let mut nan_mu = codec::encode(&price);
    // Body layout of Price: tag(1) id(4) mu(8) bool(1); floats travel as
    // IEEE-754 bits, so overwrite mu with NaN and re-checksum.
    nan_mu[9..17].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    codec::refresh_checksum(&mut nan_mu);
    vectors.push((nan_mu, "NaN price smuggled behind a valid checksum"));

    let mut absurd_id = codec::encode(&price);
    absurd_id[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    codec::refresh_checksum(&mut absurd_id);
    vectors.push((absurd_id, "resource id beyond the wire cap"));

    let mut bad_bool = codec::encode(&price);
    let at = bad_bool.len() - 5;
    bad_bool[at] = 7;
    codec::refresh_checksum(&mut bad_bool);
    vectors.push((bad_bool, "congested flag outside 0/1"));

    let mut trailing = codec::encode(&price);
    let body_len = u32::from_le_bytes(trailing[0..4].try_into().unwrap());
    trailing[0..4].copy_from_slice(&(body_len + 2).to_le_bytes());
    let crc_at = trailing.len() - 4;
    trailing.splice(crc_at..crc_at, [0u8, 0u8]);
    codec::refresh_checksum(&mut trailing);
    vectors.push((trailing, "two stray bytes after the payload"));

    let mut out_of_domain =
        codec::encode(&Message::AvailabilityUpdate { resource: 1, availability: 0.5, seq: 9 });
    out_of_domain[9..17].copy_from_slice(&42.0f64.to_bits().to_le_bytes());
    codec::refresh_checksum(&mut out_of_domain);
    vectors.push((out_of_domain, "availability far outside (0, 1] passes decode, fails validate"));

    vectors
}

/// Two pipelines over two CPUs with generous deadlines: schedulable
/// with slack, so a supervised clean run settles and stays settled.
fn comfortable_problem() -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for (i, critical) in [(0usize, 40.0), (1usize, 60.0)] {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(critical);
        tasks.push(b.build(TaskId::new(i)).unwrap());
    }
    Problem::new(resources, tasks).unwrap()
}

/// The fuzz-target body (`fuzz/fuzz_targets/frame_decode.rs`), run here
/// for a fixed number of seeded iterations so the property is exercised
/// on every `cargo test` without libfuzzer: the decoder never panics,
/// and anything it accepts is canonical (re-encodes to the same bytes).
fn fuzz_body(data: &[u8]) {
    if let Ok(msg) = codec::decode(data) {
        let _ = codec::validate(&msg);
        assert_eq!(codec::encode(&msg), data, "accepted frame must be canonical");
    }
    let mut at = 0usize;
    while at < data.len() {
        match codec::decode_frame(&data[at..]) {
            Ok((_, used)) => {
                assert!(used > 0, "stream decode must consume bytes");
                at += used;
            }
            Err(_) => break,
        }
    }
}

/// 20k adversarial inputs — replayed corpus seeds, mutated valid
/// frames, and raw random buffers — through the fuzz-target body.
#[test]
fn fuzz_smoke_decoder_never_panics() {
    let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz/corpus/frame_decode");
    for entry in std::fs::read_dir(corpus).expect("committed seed corpus") {
        fuzz_body(&std::fs::read(entry.expect("corpus entry").path()).expect("corpus bytes"));
    }
    for mut rng in cases(0xF022) {
        for _ in 0..20_000 / CASES {
            if rng.gen_bool(0.5) {
                // Mutate a valid frame: flip, truncate, or splice bytes.
                let mut frame = codec::encode(&random_message(&mut rng));
                match rng.gen_range(0u32..3) {
                    0 => {
                        let at = rng.gen_range(0..frame.len());
                        frame[at] ^= 1 << rng.gen_range(0u8..8);
                    }
                    1 => frame.truncate(rng.gen_range(0..frame.len())),
                    _ => {
                        let at = rng.gen_range(0..frame.len());
                        let n = rng.gen::<u64>().to_le_bytes();
                        let end = (at + 8).min(frame.len());
                        frame[at..end].copy_from_slice(&n[..end - at]);
                    }
                }
                fuzz_body(&frame);
            } else {
                // Raw random bytes, occasionally with a plausible prefix.
                let len = rng.gen_range(0usize..64);
                let mut buf: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
                if rng.gen_bool(0.25) && buf.len() >= 4 {
                    let body = rng.gen_range(0u32..40);
                    buf[0..4].copy_from_slice(&body.to_le_bytes());
                }
                fuzz_body(&buf);
            }
        }
    }
}

fn wire_config(wire_mode: bool, corruption: f64, seed: u64) -> DistConfig {
    DistConfig {
        allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
        network: lla::dist::NetworkModel::lossy(1.0, 2.0, 0.05),
        seed,
        wire_mode,
        corruption,
        ..DistConfig::default()
    }
}

/// The tentpole invariant: wire mode with zero corruption is *bit
/// identical* to a struct-passing run — the codec round trip is exact,
/// so turning it on changes nothing but the representation in flight.
#[test]
fn wire_mode_without_corruption_is_bit_identical() {
    let mut plain = DistributedLla::new(base_workload(), wire_config(false, 0.0, 42));
    let mut wired = DistributedLla::new(base_workload(), wire_config(true, 0.0, 42));
    plain.run_rounds(400);
    wired.run_rounds(400);

    assert_eq!(wired.frames_rejected(), 0, "nothing to reject without corruption");
    assert_eq!(wired.frames_corrupted(), 0);
    assert_eq!(plain.messages_sent(), wired.messages_sent());
    assert_eq!(plain.messages_dropped(), wired.messages_dropped());
    let (pu, wu) = (plain.utilities(), wired.utilities());
    assert_eq!(pu.len(), wu.len());
    for (round, (a, b)) in pu.iter().zip(wu).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "utility diverged at round {round}: {a} vs {b}");
    }
}

/// Survival through a 2% frame-corruption window: every malformed frame
/// is rejected (rejected + slipped == corrupted), no NaN ever reaches a
/// price, and once the window closes the deployment settles back to a
/// converging, feasible operating point on its own — the dual updates
/// keep re-broadcasting state, so validated rejection plus ordinary
/// protocol traffic is enough to wash the damage out. The corruptor
/// fixes checksums on fuzzed fields — an in-path attacker, not line
/// noise — so a handful of in-domain forgeries *will* be delivered; the
/// point is that the dynamics absorb them.
#[test]
fn corruption_soak_rejects_malformed_frames_and_reconverges() {
    let hub = TelemetryHub::recording();
    let tel = DistTelemetry::from_hub(&hub);
    // A comfortably schedulable deployment (the paper's base workload is
    // deliberately congested): the clean run genuinely converges, so the
    // post-window verdict isolates the corruption damage.
    let config = DistConfig { seed: 7, wire_mode: true, ..DistConfig::default() };
    let mut noisy = DistributedLla::with_telemetry(comfortable_problem(), config, tel);
    // Rounds are 10 virtual ms: corrupt rounds ~200..600, then recover.
    noisy.schedule_faults(&lla::dist::FaultPlan::new().corrupt_window(2_000.0, 4_000.0, 0.02));
    noisy.run_rounds(4_000);

    let corrupted = noisy.frames_corrupted();
    assert!(corrupted > 0, "a 2% rate over a 400-round window must corrupt something");
    assert_eq!(
        noisy.frames_rejected() + noisy.corrupted_delivered(),
        corrupted,
        "every corrupted frame is either rejected or decoded clean"
    );
    assert!(noisy.frames_rejected() > 0, "most corruption classes must be caught");

    // Sample a tail window well after the corruption window closed: the
    // deployment must read as converging and feasible again.
    let mut tail = DiagnosticsEngine::new();
    for _ in 0..16 {
        noisy.run_rounds(1);
        tail.push(noisy.diag_sample());
    }
    let d = tail.diagnose();
    assert_eq!(d.verdict, Verdict::Converging, "{}", d.render());
    let sample = noisy.diag_sample();
    assert!(
        sample.prices.iter().all(|p| p.is_finite()),
        "no corrupted frame may poison a price: {:?}",
        sample.prices
    );
    assert!(
        sample.worst_violation_factor <= 1.05,
        "post-window allocation must be feasible again: {}",
        sample.worst_violation_factor
    );
    let rejected_events =
        hub.events.snapshot().iter().filter(|e| e.kind == "frame_rejected").count() as u64;
    assert_eq!(rejected_events, noisy.frames_rejected(), "one event per rejection");
}

/// The supervisor quarantines a sender whose frames keep failing
/// validation, and releases it after the configured term with a dual
/// re-sync so the deployment warms back up.
#[test]
fn supervisor_quarantines_and_releases_corrupting_sender() {
    let hub = TelemetryHub::recording();
    let tel = DistTelemetry::from_hub(&hub);
    let mut dist = DistributedLla::with_telemetry(base_workload(), wire_config(true, 0.5, 11), tel);
    let mut sup = SupervisorEngine::new(SupervisorConfig::default());
    run_supervised(&mut dist, &mut sup, 300);

    let quarantines: Vec<_> =
        sup.actions().iter().filter(|a| a.kind == RemediationKind::Quarantine).collect();
    assert!(
        !quarantines.is_empty(),
        "half the frames corrupted must trip the quarantine threshold: {:?}",
        sup.actions()
    );
    assert!(dist.dist_telemetry().agent_quarantines.get() >= quarantines.len() as u64);
    assert!(dist.quarantine_drops() > 0, "quarantined senders must be silenced");
    let released = hub.events.snapshot().iter().filter(|e| e.kind == "agent_released").count();
    assert!(released > 0, "quarantine terms must expire and release");
}
