//! Integration tests for the online convergence-diagnostics engine: the
//! four canonical run shapes — feasible/converging (the Figure 6
//! scenarios), overloaded/diverging (Figure 7), step-size thrash, and a
//! partition-induced stall — must classify correctly from nothing but
//! the [`DiagSample`](lla::telemetry::DiagSample) stream.

use lla::core::{
    Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind, StepSizePolicy,
    TaskBuilder, TaskId,
};
use lla::dist::{Address, DistConfig, DistributedLla, FaultPlan, RobustnessConfig};
use lla::telemetry::{Diagnosis, DiagnosticsEngine, Verdict, DIVERGENCE_FACTOR};
use lla::workloads::scaled_workload;

/// Steps `problem` under `policy` for up to `iters` iterations (stopping
/// early on convergence), feeding every iteration into a fresh engine,
/// and returns the final diagnosis.
fn diagnose_run(problem: Problem, policy: StepSizePolicy, iters: usize) -> Diagnosis {
    let names: Vec<String> = problem.resources().iter().map(|r| r.name().to_string()).collect();
    let mut opt =
        Optimizer::new(problem, OptimizerConfig { step_policy: policy, ..Default::default() });
    let mut engine = DiagnosticsEngine::new().with_resource_names(names);
    for _ in 0..iters {
        opt.step();
        engine.push(opt.diag_sample());
        if opt.has_converged() {
            break;
        }
    }
    engine.diagnose()
}

/// Scenario 1 — feasible workloads converge and the classifier says so.
/// These are exactly the Figure 6 scaling points (3, 6, and 12 tasks
/// with deadlines scaled to stay schedulable).
#[test]
fn fig6_scenarios_classify_as_converging() {
    for replication in [1, 2, 4] {
        let problem = scaled_workload(replication, true);
        let tasks = problem.tasks().len();
        let d = diagnose_run(problem, StepSizePolicy::sign_adaptive(1.0), 4_000);
        assert_eq!(d.verdict, Verdict::Converging, "fig6 point with {tasks} tasks: {}", d.render());
        assert!(d.confident, "fig6 point with {tasks} tasks ran long enough to be confident");
        assert_eq!(d.frozen_fraction, 0.0);
        assert!(
            d.violation_factor < DIVERGENCE_FACTOR,
            "converged point must be (near-)feasible: {}",
            d.render()
        );
    }
}

/// Scenario 2 — the Figure 7 regime: the 6-task workload *without*
/// deadline scaling is unschedulable, and the paper's point is that
/// sustained non-convergence IS the schedulability verdict. The engine
/// must name it `diverging`, not merely "not converged".
#[test]
fn overloaded_fig7_scenario_classifies_as_diverging() {
    let problem = scaled_workload(2, false);
    let d = diagnose_run(problem, StepSizePolicy::adaptive(1.0), 600);
    assert_eq!(d.verdict, Verdict::Diverging, "{}", d.render());
    assert!(d.confident);
    assert!(
        d.violation_factor >= DIVERGENCE_FACTOR,
        "diverging needs a sustained violation: {}",
        d.render()
    );
    // The evidence rows name the resources, noisiest price loop first.
    assert!(!d.evidence.is_empty());
    assert!(d.evidence[0].mean_price.is_finite());
}

/// Scenario 3 — step-size thrash: an aggressive adaptive γ on a tight
/// workload keeps straddling the congestion boundary, doubling and
/// resetting every few iterations while the utility rings. The verdict
/// must be `gamma-thrash`, which tells the operator to lower the
/// initial step size — distinct from plain `oscillating`, which would
/// point at a *fixed* γ chosen too large.
#[test]
fn aggressive_adaptive_step_classifies_as_gamma_thrash() {
    let problem = scaled_workload(2, true);
    let policy = StepSizePolicy::Adaptive { initial: 8.0, factor: 2.0, max: 512.0 };
    let d = diagnose_run(problem, policy, 600);
    assert_eq!(d.verdict, Verdict::GammaThrash, "{}", d.render());
    assert!(d.confident);
    assert!(d.gamma_doubling_density >= lla::telemetry::GAMMA_THRASH_DENSITY);
}

/// Two tasks over two CPUs, comfortably schedulable — the deployment
/// used for the partition-stall scenario.
fn small_problem() -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
        let mut b = TaskBuilder::new(format!("t{i}"));
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(c);
        tasks.push(b.build(TaskId::new(i)).unwrap());
    }
    Problem::new(resources, tasks).unwrap()
}

/// Scenario 4 — partition-induced stall: with a staleness TTL armed, a
/// full controller↔resource partition freezes every agent onto its
/// last-known-good state. Samples taken during the partition must
/// classify as `stalled` with the frozen-agent evidence to match.
#[test]
fn partition_stall_classifies_as_stalled() {
    let mut dist = DistributedLla::new(
        small_problem(),
        DistConfig {
            robustness: RobustnessConfig { staleness_ttl: 30.0, ..Default::default() },
            ..DistConfig::default()
        },
    );
    // Partition everything from round 500 for 100 rounds.
    let plan = FaultPlan::new().partition(
        5_000.0,
        1_000.0,
        [Address::Controller(0), Address::Controller(1)],
        [Address::Resource(0), Address::Resource(1)],
    );
    dist.schedule_faults(&plan);

    let names: Vec<String> =
        dist.problem().resources().iter().map(|r| r.name().to_string()).collect();
    let mut engine = DiagnosticsEngine::new().with_resource_names(names);

    // Converge well before the partition and take a clean window there.
    dist.run_rounds(460);
    let healthy_before = {
        let mut warm = DiagnosticsEngine::new();
        for _ in 0..16 {
            dist.run_rounds(1);
            warm.push(dist.diag_sample());
        }
        warm.diagnose()
    };
    // Advance into the partition (it starts at round 500; the staleness
    // TTL expires three rounds later), then sample through its heart.
    dist.run_rounds(30);
    for _ in 0..40 {
        dist.run_rounds(1);
        engine.push(dist.diag_sample());
    }
    let d = engine.diagnose();
    assert_eq!(d.verdict, Verdict::Stalled, "{}", d.render());
    assert!(d.confident);
    assert!(
        d.frozen_fraction >= lla::telemetry::STALL_FROZEN_FRACTION,
        "stall must be evidenced by frozen agents: {}",
        d.render()
    );
    // Contrast: the same deployment read as converging before the TTL
    // expired (the partition starts at round 500, TTL expires 3 rounds
    // later — the pre-partition window is clean).
    assert_eq!(healthy_before.verdict, Verdict::Converging, "{}", healthy_before.render());
}
