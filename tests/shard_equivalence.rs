//! The sharded hierarchy must be indistinguishable from the monolithic
//! optimizer: one shard is *bit-identical*, and any partition tracks the
//! monolithic price/allocation trajectory to 1e-9 on the paper workloads
//! (Figures 6 and 7), the large-scale random generator, and the clustered
//! generator under both planted and affinity-recovered partitions. A
//! seeded property sweep then checks that *random* shard partitions
//! preserve feasibility and KKT residuals.

use lla::core::{Optimizer, OptimizerConfig, Problem, ShardSpec, ShardedOptimizer, StepSizePolicy};
use lla::workloads::{
    clustered_workload, large_scale_workload, partition_by_affinity, scaled_workload,
    RandomWorkloadConfig, TaskShape,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

/// Per-property master seeds: independent streams, stable across runs.
fn cases(salt: u64) -> impl Iterator<Item = StdRng> {
    (0..CASES as u64).map(move |i| StdRng::seed_from_u64(salt.wrapping_mul(0x9e37_79b9) + i))
}

fn config() -> OptimizerConfig {
    OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    }
}

fn max_alloc_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert_eq!(a.len(), b.len(), "task count mismatch");
    let mut worst = 0.0_f64;
    for (ta, tb) in a.iter().zip(b) {
        assert_eq!(ta.len(), tb.len(), "subtask count mismatch");
        for (&x, &y) in ta.iter().zip(tb) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

/// Steps a monolithic [`Optimizer`] and a [`ShardedOptimizer`] over the
/// same problem in lockstep and asserts the allocations never drift apart
/// by more than `tol` (absolute, per latency entry).
fn check_tracks(problem: &Problem, spec: ShardSpec, iters: usize, tol: f64, what: &str) {
    let shards = spec.num_shards();
    let mut mono = Optimizer::new(problem.clone(), config());
    let mut sharded =
        ShardedOptimizer::new(problem.clone(), config(), spec).expect("spec is a partition");
    for round in 0..iters {
        mono.step();
        sharded.step();
        if round % 50 == 0 || round + 1 == iters {
            let diff = max_alloc_diff(mono.allocation().lats(), sharded.allocation().lats());
            assert!(
                diff <= tol,
                "{what}: {shards}-shard allocation drifted {diff:.3e} > {tol:.0e} \
                 from monolithic at round {round}"
            );
        }
    }
    let du = (mono.utility() - sharded.utility()).abs();
    assert!(du <= tol * mono.utility().abs().max(1.0), "{what}: utility drifted {du:.3e}");
}

/// One shard runs the exact same kernels in the exact same order as the
/// monolithic optimizer, so the trajectories are equal bit for bit — not
/// merely within tolerance.
#[test]
fn single_shard_is_bitwise_identical_on_fig6() {
    let problem = scaled_workload(2, true);
    let mut mono = Optimizer::new(problem.clone(), config());
    let mut sharded = ShardedOptimizer::new(
        problem.clone(),
        config(),
        ShardSpec::contiguous(problem.tasks().len(), 1),
    )
    .expect("single shard is a partition");
    for round in 0..300 {
        let mr = mono.step();
        let sr = sharded.step();
        assert_eq!(mono.allocation().lats(), sharded.allocation().lats(), "round {round}");
        assert_eq!(mr.utility.to_bits(), sr.utility.to_bits(), "utility bits at {round}");
        assert_eq!(
            mr.max_resource_violation.to_bits(),
            sr.max_resource_violation.to_bits(),
            "resource violation bits at {round}"
        );
        assert_eq!(
            mr.max_path_violation.to_bits(),
            sr.max_path_violation.to_bits(),
            "path violation bits at {round}"
        );
    }
}

/// Figure 6 scaling points (§5.3, schedulable): sharded allocations pin to
/// the monolithic trajectory within 1e-9 at every checked round.
#[test]
fn sharded_tracks_monolithic_on_fig6_scaling() {
    for (replication, shards) in [(1usize, 3usize), (2, 2), (4, 3)] {
        let problem = scaled_workload(replication, true);
        let spec = ShardSpec::contiguous(problem.tasks().len(), shards);
        check_tracks(&problem, spec, 500, 1e-9, "fig6");
    }
}

/// Figure 7's unschedulable workload (§5.4): even where no feasible point
/// exists and prices keep climbing, the sharded trajectory stays pinned.
#[test]
fn sharded_tracks_monolithic_on_fig7_unschedulable() {
    let problem = scaled_workload(2, false);
    let spec = ShardSpec::contiguous(problem.tasks().len(), 2);
    check_tracks(&problem, spec, 400, 1e-9, "fig7");
}

/// The large-scale random generator with a contiguous 4-way partition.
#[test]
fn sharded_tracks_monolithic_on_large_scale() {
    let problem = large_scale_workload(200, 11).expect("valid config");
    let spec = ShardSpec::contiguous(problem.tasks().len(), 4);
    check_tracks(&problem, spec, 300, 1e-9, "large_scale");
}

/// The clustered generator under both the planted cluster partition and
/// the affinity-recovered one (which should coincide, but is validated
/// independently here against the monolithic trajectory).
#[test]
fn sharded_tracks_monolithic_on_clustered_partitions() {
    let (problem, planted) = clustered_workload(80, 4, 7).expect("valid geometry");
    check_tracks(&problem, planted, 300, 1e-9, "clustered/planted");
    let affinity = partition_by_affinity(&problem, 4);
    check_tracks(&problem, affinity, 300, 1e-9, "clustered/affinity");
}

fn random_shape(rng: &mut StdRng) -> TaskShape {
    match rng.gen_range(0usize..5) {
        0 => TaskShape::Chain,
        1 => TaskShape::FanOut,
        2 => TaskShape::Diamond,
        3 => TaskShape::RandomDag,
        _ => TaskShape::Mixed,
    }
}

fn random_workload(rng: &mut StdRng) -> RandomWorkloadConfig {
    RandomWorkloadConfig {
        num_resources: rng.gen_range(2usize..=8),
        num_tasks: rng.gen_range(1usize..=5),
        min_subtasks: 2,
        max_subtasks: 6,
        shape: random_shape(rng),
        exec_time_range: (1.0, 6.0),
        lag: 1.0,
        target_load: rng.gen_range(0.5f64..0.95),
        deadline_headroom: rng.gen_range(1.2f64..3.0),
        seed: rng.gen(),
    }
}

/// Draws a uniformly random partition of `num_tasks` tasks into at most
/// `max_shards` groups, dropping empty groups.
fn random_partition(rng: &mut StdRng, num_tasks: usize, max_shards: usize) -> ShardSpec {
    let k = rng.gen_range(1..=max_shards.min(num_tasks).max(1));
    let mut groups = vec![Vec::new(); k];
    for t in 0..num_tasks {
        groups[rng.gen_range(0..k)].push(t);
    }
    groups.retain(|g| !g.is_empty());
    ShardSpec::from_groups(groups)
}

/// Random shard partitions preserve feasibility and KKT residuals: on
/// every constructively-schedulable random workload, a randomly sharded
/// optimizer converges to a feasible point, and its KKT residuals match
/// the monolithic optimizer run for the same number of rounds to 1e-6.
#[test]
fn random_partitions_preserve_feasibility_and_kkt() {
    for mut rng in cases(17) {
        let cfg = random_workload(&mut rng);
        let problem = cfg.generate().expect("valid config");
        let spec = random_partition(&mut rng, problem.tasks().len(), 3);
        let shards = spec.num_shards();

        let mut sharded =
            ShardedOptimizer::new(problem.clone(), config(), spec).expect("spec is a partition");
        let outcome = sharded.run_to_convergence(15_000);
        assert!(outcome.converged, "{shards}-shard run did not converge on {cfg:?}: {outcome:?}");
        assert!(
            problem.is_feasible(sharded.allocation().lats(), 1e-2),
            "infeasible at convergence on {cfg:?} with {shards} shards"
        );

        let mut mono = Optimizer::new(problem.clone(), config());
        mono.run(sharded.iterations());
        let diff = max_alloc_diff(mono.allocation().lats(), sharded.allocation().lats());
        assert!(diff <= 1e-9, "allocation drifted {diff:.3e} on {cfg:?} with {shards} shards");

        let mk = mono.kkt();
        let sk = sharded.kkt();
        for (m, s, what) in [
            (mk.max_stationarity_residual, sk.max_stationarity_residual, "stationarity"),
            (mk.max_resource_violation, sk.max_resource_violation, "resource violation"),
            (mk.max_path_violation, sk.max_path_violation, "path violation"),
            (
                mk.max_complementary_slackness,
                sk.max_complementary_slackness,
                "complementary slackness",
            ),
        ] {
            assert!(
                (m - s).abs() <= 1e-6 * m.abs().max(s.abs()).max(1.0),
                "KKT {what} drifted: monolithic {m} vs sharded {s} on {cfg:?} ({shards} shards)"
            );
        }
    }
}
