//! Randomized property tests over generated workloads and inputs.
//!
//! Formerly written against `proptest`; the offline build environment
//! cannot fetch it, so the same properties are now driven by an explicit
//! seeded RNG (the vendored `rand` stub). Every case derives from a fixed
//! master seed, so failures are exactly reproducible; the case count per
//! property matches the old `ProptestConfig::with_cases(24)`.
//!
//! The random workload generator guarantees schedulability by
//! construction (a witness allocation exists), so LLA's convergence and
//! feasibility can be asserted for *every* generated instance.

use lla::core::{
    compose_path_percentile, dual_value, lagrangian_value, AllocationSettings, Optimizer,
    OptimizerConfig, PriceState, ResourceId, ShareModel, StepSizePolicy, SubtaskGraph, TaskBuilder,
    TaskId, UtilityFn,
};
use lla::workloads::{RandomWorkloadConfig, TaskShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

/// Per-property master seeds: independent streams, stable across runs.
fn cases(salt: u64) -> impl Iterator<Item = StdRng> {
    (0..CASES as u64).map(move |i| StdRng::seed_from_u64(salt.wrapping_mul(0x9e37_79b9) + i))
}

fn random_shape(rng: &mut StdRng) -> TaskShape {
    match rng.gen_range(0usize..5) {
        0 => TaskShape::Chain,
        1 => TaskShape::FanOut,
        2 => TaskShape::Diamond,
        3 => TaskShape::RandomDag,
        _ => TaskShape::Mixed,
    }
}

fn random_workload(rng: &mut StdRng) -> RandomWorkloadConfig {
    RandomWorkloadConfig {
        num_resources: rng.gen_range(2usize..=8),
        num_tasks: rng.gen_range(1usize..=5),
        min_subtasks: 2,
        max_subtasks: 6,
        shape: random_shape(rng),
        exec_time_range: (1.0, 6.0),
        lag: 1.0,
        target_load: rng.gen_range(0.5f64..0.95),
        deadline_headroom: rng.gen_range(1.2f64..3.0),
        seed: rng.gen(),
    }
}

/// LLA converges on every constructively-schedulable random workload,
/// and the result is feasible.
#[test]
fn lla_converges_on_random_schedulable_workloads() {
    for mut rng in cases(1) {
        let cfg = random_workload(&mut rng);
        let problem = cfg.generate().expect("valid config");
        let mut opt = Optimizer::new(
            problem,
            OptimizerConfig {
                step_policy: StepSizePolicy::sign_adaptive(1.0),
                ..OptimizerConfig::default()
            },
        );
        let outcome = opt.run_to_convergence(15_000);
        assert!(outcome.converged, "did not converge on {cfg:?}: {outcome:?}");
        assert!(
            opt.problem().is_feasible(opt.allocation().lats(), 1e-2),
            "infeasible at convergence on {cfg:?}: resource {:?}, path {:?}",
            opt.problem().max_resource_violation(opt.allocation().lats()),
            opt.problem().max_path_violation(opt.allocation().lats())
        );
    }
}

/// Weak duality: for any prices, the dual value dominates the utility
/// of the witness (feasible) allocation.
#[test]
fn weak_duality_on_random_workloads() {
    for mut rng in cases(2) {
        let cfg = random_workload(&mut rng);
        let mu_scale = rng.gen_range(0.0f64..200.0);
        let problem = cfg.generate().expect("valid config");
        let settings = AllocationSettings::default();
        let mut prices = PriceState::new(&problem, StepSizePolicy::fixed(1.0));
        for r in 0..problem.resources().len() {
            prices.set_mu(r, mu_scale * (r as f64 + 1.0) / problem.resources().len() as f64);
        }
        // The generator guarantees this witness is feasible.
        let mut n_r = vec![0usize; problem.resources().len()];
        for t in problem.tasks() {
            for s in t.subtasks() {
                n_r[s.resource().index()] += 1;
            }
        }
        let witness: Vec<Vec<f64>> = problem
            .tasks()
            .iter()
            .map(|t| {
                t.subtasks()
                    .iter()
                    .map(|s| {
                        let share = cfg.target_load / n_r[s.resource().index()] as f64;
                        (s.exec_time() + cfg.lag) / share
                    })
                    .collect()
            })
            .collect();
        assert!(problem.is_feasible(&witness, 1e-9));
        let primal = problem.total_utility(&witness);
        let dual = dual_value(&problem, &prices, &settings);
        assert!(
            dual.value >= primal - 1e-6,
            "weak duality violated on {cfg:?}: dual {} < primal {primal}",
            dual.value
        );
    }
}

/// The allocator's output maximizes the Lagrangian over the clamping
/// box: no unilateral in-box perturbation of any subtask latency may
/// increase it.
#[test]
fn allocation_maximizes_lagrangian() {
    for mut rng in cases(3) {
        let cfg = random_workload(&mut rng);
        let mu = rng.gen_range(1.0f64..100.0);
        let delta = rng.gen_range(0.05f64..2.0);
        let problem = cfg.generate().expect("valid config");
        let settings = AllocationSettings::default();
        let mut prices = PriceState::new(&problem, StepSizePolicy::fixed(1.0));
        for r in 0..problem.resources().len() {
            prices.set_mu(r, mu);
        }
        let dual = dual_value(&problem, &prices, &settings);
        let base = lagrangian_value(&problem, &dual.maximizer, &prices);
        for (t, task) in problem.tasks().iter().enumerate() {
            let (lo, hi) = lla::core::clamping_box(&problem, task, &settings);
            for s in 0..task.len() {
                for sign in [-1.0, 1.0] {
                    let mut perturbed = dual.maximizer.clone();
                    let candidate = (perturbed[t][s] + sign * delta).clamp(lo[s], hi[s]);
                    if (candidate - perturbed[t][s]).abs() < 1e-12 {
                        continue; // already at the box boundary
                    }
                    perturbed[t][s] = candidate;
                    let l = lagrangian_value(&problem, &perturbed, &prices);
                    assert!(
                        l <= base + 1e-7,
                        "perturbing ({t},{s}) by {} raised L: {l} > {base} on {cfg:?}",
                        sign * delta
                    );
                }
            }
        }
    }
}

/// Share model: `share_for_latency` and `latency_for_share` are exact
/// inverses, and the share function is strictly decreasing and convex.
#[test]
fn share_model_inverse_and_convex() {
    for mut rng in cases(4) {
        let exec = rng.gen_range(0.1f64..50.0);
        let lag = rng.gen_range(0.0f64..10.0);
        let correction = rng.gen_range(-20.0f64..20.0);
        let lat = rng.gen_range(0.1f64..500.0);
        let mut m = ShareModel::new(exec, lag).expect("valid");
        m.set_correction(correction);
        let lat = lat + correction.max(0.0) + 0.1; // stay in the valid domain
        let share = m.share_for_latency(lat);
        if share.is_finite() && share > 0.0 {
            assert!((m.latency_for_share(share) - lat).abs() < 1e-6 * lat.max(1.0));
            // Strict decrease.
            let share2 = m.share_for_latency(lat * 1.01);
            assert!(share2 < share);
            // Convexity via midpoint.
            let a = lat;
            let b = lat * 2.0;
            let mid = m.share_for_latency((a + b) / 2.0);
            let chord = (m.share_for_latency(a) + m.share_for_latency(b)) / 2.0;
            assert!(mid <= chord + 1e-12);
        }
    }
}

/// Percentile composition: the per-subtask percentile recombines to
/// the requested end-to-end percentile for any path length.
#[test]
fn percentile_composition_roundtrip() {
    for mut rng in cases(5) {
        let p = rng.gen_range(0.1f64..100.0);
        let n = rng.gen_range(1usize..10);
        let q = compose_path_percentile(p, n);
        assert!((0.0..=100.0 + 1e-9).contains(&q));
        assert!(q >= p - 1e-9, "per-subtask percentile must not be below end-to-end");
        let back = (q / 100.0).powi(n as i32) * 100.0;
        assert!((back - p).abs() < 1e-6, "p={p} n={n} q={q} back={back}");
    }
}

/// Random DAGs: the DP-computed path weights agree with explicit path
/// enumeration, and every path runs root to leaf.
#[test]
fn graph_weights_match_enumeration() {
    for mut rng in cases(6) {
        let n = rng.gen_range(1usize..9);
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
            if i >= 2 && rng.gen_bool(0.4) {
                let extra = rng.gen_range(0..i);
                edges.push((extra, i));
            }
        }
        let g = SubtaskGraph::new(TaskId::new(0), n, &edges).expect("valid DAG");
        for v in 0..n {
            let count = g.paths().iter().filter(|p| p.subtasks().contains(&v)).count();
            assert_eq!(g.path_weight(v), count, "weight mismatch at node {v}");
        }
        for path in g.paths() {
            assert_eq!(path.subtasks()[0], g.root());
            let last = *path.subtasks().last().unwrap();
            assert!(g.successors(last).is_empty());
        }
    }
}

/// The spec parser never panics, whatever garbage it is fed — it
/// either produces a problem or a structured error.
#[test]
fn spec_parser_is_panic_free() {
    for mut rng in cases(7) {
        let len = rng.gen_range(0usize..=300);
        let input: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional multi-byte and
                // control characters, approximating proptest's `\PC`.
                match rng.gen_range(0usize..20) {
                    0 => '\u{e9}',   // é
                    1 => '\u{4e16}', // 世
                    2 => '\t',
                    3 => '\n',
                    _ => char::from(rng.gen_range(0x20u8..0x7f)),
                }
            })
            .collect();
        let _ = lla::spec::parse(&input);
    }
}

/// Spec parser robustness against syntactically-plausible fragments.
#[test]
fn spec_parser_handles_fragmented_declarations() {
    const KEYWORDS: [&str; 5] = ["resource", "task", "subtask", "edge", "chain"];
    const TOKEN_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789=.";
    for mut rng in cases(8) {
        let keyword = KEYWORDS[rng.gen_range(0usize..KEYWORDS.len())];
        let n_tokens = rng.gen_range(0usize..5);
        let tokens: Vec<String> = (0..n_tokens)
            .map(|_| {
                let len = rng.gen_range(0usize..=8);
                (0..len)
                    .map(|_| TOKEN_CHARS[rng.gen_range(0usize..TOKEN_CHARS.len())] as char)
                    .collect()
            })
            .collect();
        let line = format!("{keyword} {}", tokens.join(" "));
        let _ = lla::spec::parse(&line);
    }
}

/// Schedulability is monotone in the deadline scale: if a workload is
/// schedulable, relaxing every critical time keeps it schedulable
/// (probed through the generator's headroom knob).
#[test]
fn schedulability_monotone_in_headroom() {
    use lla::core::{analyze_schedulability, SchedulabilityConfig};
    for mut rng in cases(9) {
        let seed: u64 = rng.gen();
        let load = rng.gen_range(0.6f64..0.9);
        let config = SchedulabilityConfig {
            optimizer: OptimizerConfig {
                step_policy: StepSizePolicy::sign_adaptive(1.0),
                ..OptimizerConfig::default()
            },
            max_iters: 15_000,
            ..SchedulabilityConfig::default()
        };
        let tight = RandomWorkloadConfig {
            seed,
            target_load: load,
            num_tasks: 3,
            deadline_headroom: 1.3,
            ..Default::default()
        };
        let relaxed = RandomWorkloadConfig { deadline_headroom: 2.6, ..tight };
        let tight_verdict = analyze_schedulability(tight.generate().unwrap(), &config);
        if tight_verdict.is_schedulable() {
            let relaxed_verdict = analyze_schedulability(relaxed.generate().unwrap(), &config);
            assert!(
                relaxed_verdict.is_schedulable(),
                "relaxing deadlines must preserve schedulability (seed {seed}): {relaxed_verdict:?}"
            );
        }
    }
}

/// Price projection: prices never go negative whatever the allocation.
#[test]
fn prices_stay_nonnegative() {
    for mut rng in cases(10) {
        let cfg = random_workload(&mut rng);
        let iters = rng.gen_range(1usize..60);
        let problem = cfg.generate().expect("valid config");
        let mut opt = Optimizer::new(
            problem,
            OptimizerConfig {
                step_policy: StepSizePolicy::adaptive(1.0),
                ..OptimizerConfig::default()
            },
        );
        for _ in 0..iters {
            opt.step();
        }
        for r in 0..opt.problem().resources().len() {
            assert!(opt.prices().mu(r) >= 0.0);
        }
        for (t, task) in opt.problem().tasks().iter().enumerate() {
            for p in 0..task.graph().paths().len() {
                assert!(opt.prices().lambda(t, p) >= 0.0);
            }
        }
    }
}

/// A light two-subtask chain for churn tests: small demand relative to the
/// generated workload's execution times, so joining it keeps the instance
/// schedulable, and a linear utility so the objective stays concave.
fn random_churn_task(tag: usize, n_resources: usize, rng: &mut StdRng) -> TaskBuilder {
    let r1 = rng.gen_range(0..n_resources);
    let r2 = rng.gen_range(0..n_resources);
    let mut b = TaskBuilder::new(format!("churn-{tag}"));
    b.subtask("a", ResourceId::new(r1), rng.gen_range(0.2f64..0.6));
    b.subtask("b", ResourceId::new(r2), rng.gen_range(0.2f64..0.6));
    b.edge(0, 1).expect("two-subtask chain");
    let ct = rng.gen_range(80.0f64..200.0);
    b.critical_time(ct)
        .utility(UtilityFn::Linear { offset: 2.0 * ct, slope: -rng.gen_range(0.2f64..1.0) });
    b
}

/// Membership churn keeps ids dense: after any random interleaving of
/// `add_task` / `remove_task`, live task ids are exactly `0..n`, every
/// removal's remap report is a dense bijection onto the survivors, and the
/// price state stays aligned with the topology (stepping never indexes out
/// of bounds).
#[test]
fn membership_churn_keeps_ids_dense() {
    for mut rng in cases(11) {
        let cfg = random_workload(&mut rng);
        let problem = cfg.generate().expect("valid config");
        let n_resources = problem.resources().len();
        let mut expected = problem.tasks().len();
        let mut opt = Optimizer::new(problem, OptimizerConfig::default());
        let ops = rng.gen_range(3usize..10);
        for k in 0..ops {
            let n = opt.problem().tasks().len();
            if n == 0 || rng.gen_bool(0.6) {
                let id = opt
                    .add_task(&random_churn_task(k, n_resources, &mut rng))
                    .expect("churn task is valid");
                assert_eq!(id.index(), n, "a join takes the next dense id");
                expected += 1;
            } else {
                let victim = TaskId::new(rng.gen_range(0..n));
                let report = opt.remove_task(victim).expect("victim is live");
                assert!(report.task_map[victim.index()].is_none(), "victim leaves the map");
                let mut survivors: Vec<usize> = report.task_map.iter().flatten().copied().collect();
                survivors.sort_unstable();
                assert_eq!(
                    survivors,
                    (0..n - 1).collect::<Vec<_>>(),
                    "remap is a dense bijection onto 0..{}",
                    n - 1
                );
                expected -= 1;
            }
            assert_eq!(opt.problem().tasks().len(), expected, "live count tracks churn");
            opt.step();
            for t in 0..expected {
                for p in 0..opt.problem().tasks()[t].graph().paths().len() {
                    assert!(opt.prices().lambda(t, p).is_finite(), "prices track topology");
                }
            }
        }
    }
}

/// Warm-started convergence matches a cold solve: after converging, joining
/// a task and continuing from the warm duals must land within tolerance of
/// a fresh optimizer solving the mutated problem from scratch (the problem
/// is concave, so both must find the same optimum).
#[test]
fn warm_started_convergence_matches_cold_solve() {
    for mut rng in cases(12) {
        let cfg = RandomWorkloadConfig {
            target_load: rng.gen_range(0.4f64..0.7),
            ..random_workload(&mut rng)
        };
        let problem = cfg.generate().expect("valid config");
        let n_resources = problem.resources().len();
        let config = OptimizerConfig {
            step_policy: StepSizePolicy::sign_adaptive(1.0),
            ..OptimizerConfig::default()
        };
        let mut warm = Optimizer::new(problem, config);
        assert!(warm.run_to_convergence(15_000).converged, "pre-churn solve converges");
        warm.add_task(&random_churn_task(0, n_resources, &mut rng)).expect("valid join");
        let warm_out = warm.run_to_convergence(20_000);
        assert!(warm_out.converged, "warm restart converges on {cfg:?}");

        let mut cold = Optimizer::new(warm.problem().clone(), config);
        assert!(cold.run_to_convergence(20_000).converged, "cold solve converges");

        let scale = cold.utility().abs().max(1.0);
        assert!(
            (warm.utility() - cold.utility()).abs() <= 0.05 * scale,
            "warm {} vs cold {} diverge beyond 5% on {cfg:?}",
            warm.utility(),
            cold.utility()
        );
        assert!(
            warm.problem().is_feasible(warm.allocation().lats(), 1e-2),
            "warm-started allocation is feasible"
        );
    }
}

/// `remove_task(add_task(p, t))` round-trips: joining a task and
/// immediately removing it restores a problem equal to the original, and
/// the removal report is the identity on the survivors.
#[test]
fn add_then_remove_round_trips_the_problem() {
    for mut rng in cases(13) {
        let cfg = random_workload(&mut rng);
        let problem = cfg.generate().expect("valid config");
        let n_resources = problem.resources().len();
        let before = problem.clone();
        let mut opt = Optimizer::new(problem, OptimizerConfig::default());
        let id = opt
            .add_task(&random_churn_task(99, n_resources, &mut rng))
            .expect("churn task is valid");
        let report = opt.remove_task(id).expect("just added");
        assert_eq!(*opt.problem(), before, "round-trip restores the problem");
        for (old, new) in report.task_map.iter().enumerate().take(before.tasks().len()) {
            assert_eq!(*new, Some(old), "survivors keep their ids");
        }
        assert_eq!(report.task_map[id.index()], None, "the round-tripped task is gone");
    }
}
