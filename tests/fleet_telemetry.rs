//! Fleet-telemetry plane integration tests: the golden alert timeline the
//! CI smoke job diffs, the collector's merge accounting under loss ×
//! duplication × reordering × partitions, and the pin that the plane is
//! fully dormant unless `report_cadence` is set.

use lla_bench::fleet::{run_fleet_soak, FleetSoakConfig};
use lla_dist::agents::{ResourceAgent, TaskController};
use lla_dist::fleet::{M_MESSAGES_IN, M_TICKS};
use lla_dist::{
    Address, AgentTelemetry, DistConfig, DistTelemetry, DistributedLla, FaultPlan, NetworkModel,
};
use lla_telemetry::TelemetryHub;
use lla_workloads::base_workload;

/// The seeded soak must walk the default `fleet-overload` rule through
/// Firing while the scripted availability drop is open, resolve it after
/// capacity recovers, and reproduce the committed alert timeline byte for
/// byte. Regenerate with `LLA_REGEN_GOLDEN=1 cargo test --test
/// fleet_telemetry`.
#[test]
fn fleet_soak_alert_timeline_matches_golden_file() {
    let hub = TelemetryHub::recording();
    let report = run_fleet_soak(&FleetSoakConfig::default(), &hub);
    assert!(
        report.fired_during_overload,
        "the overload SLO must fire during the scripted window; alerts:\n{}",
        report.alerts_jsonl()
    );
    assert!(
        report.resolved_after_recovery,
        "the window's firing episode must resolve after recovery; alerts:\n{}",
        report.alerts_jsonl()
    );
    assert_eq!(report.watermark_regressions, 0, "per-agent watermarks are monotone");

    let jsonl = report.alerts_jsonl();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fleet_alerts.jsonl");
    if std::env::var_os("LLA_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden file");
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file present (LLA_REGEN_GOLDEN=1 cargo test --test fleet_telemetry regenerates it)",
    );
    assert_eq!(
        jsonl, golden,
        "alert timeline drifted from tests/golden/fleet_alerts.jsonl; \
         if the change is intentional, regenerate the golden file"
    );
}

/// Runs a shipping-enabled deployment over `network` with `plan`'s faults
/// and returns it quiesced after `rounds` rounds.
fn run_plane(network: NetworkModel, seed: u64, plan: &FaultPlan, rounds: usize) -> DistributedLla {
    let hub = TelemetryHub::recording();
    let mut dist = DistributedLla::with_telemetry(
        base_workload(),
        DistConfig { network, seed, report_cadence: 10.0, ..DistConfig::default() },
        DistTelemetry::from_hub(&hub),
    );
    dist.schedule_faults(plan);
    dist.run_rounds(rounds);
    dist
}

/// Sums `f` over every agent's shipping books.
fn sum_over_agents(dist: &mut DistributedLla, f: impl Fn(&AgentTelemetry) -> u64) -> u64 {
    let (tasks, resources) = (base_workload().tasks().len(), base_workload().resources().len());
    let mut sum = 0;
    for t in 0..tasks {
        let ctl = dist
            .runtime_mut()
            .actor_as::<TaskController>(Address::Controller(t))
            .expect("controller registered");
        sum += f(ctl.fleet_telemetry());
    }
    for r in 0..resources {
        let res = dist
            .runtime_mut()
            .actor_as::<ResourceAgent>(Address::Resource(r))
            .expect("resource registered");
        sum += f(res.fleet_telemetry());
    }
    sum
}

/// Property-style sweep: under loss × duplication × reordering × a
/// collector partition window, the collector's books must stay closed —
/// watermarks never rewind, every sequence at or below an agent's
/// high-water mark is either merged or accounted lost, and no agent's
/// merge frontier outruns what it actually emitted.
#[test]
fn collector_accounting_closes_under_adversarial_delivery() {
    for (seed, loss, dup, reorder) in [
        (1u64, 0.10, 0.10, 0.20),
        (2, 0.25, 0.05, 0.10),
        (3, 0.00, 0.20, 0.30),
        (4, 0.15, 0.15, 0.00),
    ] {
        let network =
            NetworkModel::lossy(0.5, 1.0, loss).with_duplication(dup).with_reordering(reorder, 5.0);
        // Cut every resource off from the collector for a window mid-run:
        // their reports vanish, the seq gaps must surface as losses.
        let resources: Vec<Address> =
            (0..base_workload().resources().len()).map(Address::Resource).collect();
        let plan = FaultPlan::new().partition(400.0, 200.0, resources, vec![Address::Collector]);
        let mut dist = run_plane(network, seed, &plan, 120);

        let emitted = sum_over_agents(&mut dist, AgentTelemetry::emitted);
        let view = dist.fleet_view().expect("shipping enabled");
        let label = format!("seed={seed} loss={loss} dup={dup} reorder={reorder}");
        assert_eq!(view.watermark_regressions(), 0, "{label}: watermark rewound");
        assert!(view.reports_merged() > 0, "{label}: no reports made it");
        let frontier: u64 =
            view.agent_labels().iter().map(|a| view.agent(a).unwrap().last_seq()).sum();
        assert_eq!(
            view.reports_merged() + view.reports_lost(),
            frontier,
            "{label}: merged + lost must cover every seq at or below the merge frontier"
        );
        assert!(
            frontier <= emitted,
            "{label}: merge frontier {frontier} outran the {emitted} reports agents emitted"
        );
        if dup > 0.0 {
            assert!(view.reports_stale() > 0, "{label}: duplication must hit the seq dedupe");
        }
        if loss > 0.0 {
            assert!(view.reports_lost() > 0, "{label}: loss + partition must surface as lost");
        }
        let fleet_wm = view.fleet_watermark().expect("every agent reported");
        assert!(fleet_wm <= dist.runtime().now(), "watermarks come from the virtual clock");
    }
}

/// With duplication and reordering but zero loss, delivery is exactly-once
/// after dedupe: nothing is ever evicted as permanently lost, so every
/// provisionally-lost report is a live reorder hole, and the fleet tick
/// totals exactly match the merged sequence prefix of each agent.
#[test]
fn duplication_and_reordering_without_loss_merge_exactly_once() {
    let network =
        NetworkModel::lossy(0.5, 1.0, 0.0).with_duplication(0.3).with_reordering(0.3, 4.0);
    let mut dist = run_plane(network, 7, &FaultPlan::new(), 100);
    let emitted = sum_over_agents(&mut dist, AgentTelemetry::emitted);
    let view = dist.fleet_view().expect("shipping enabled");
    assert!(view.reports_stale() > 0, "duplicates must be dropped as stale");
    assert_eq!(view.watermark_regressions(), 0);
    // No loss: any hole is a late frame still in flight, never an eviction.
    let live_holes: u64 =
        view.agent_labels().iter().map(|a| view.agent(a).unwrap().holes() as u64).sum();
    assert_eq!(view.reports_lost(), live_holes, "no report may be evicted as lost");
    // Exactly-once: merged covers each frontier sequence exactly once even
    // though ~30% of frames were delivered twice, so merged never exceeds
    // what the agents emitted.
    let frontier: u64 = view.agent_labels().iter().map(|a| view.agent(a).unwrap().last_seq()).sum();
    assert_eq!(view.reports_merged() + view.reports_lost(), frontier);
    assert!(frontier <= emitted);
    assert!(view.fleet_total(M_TICKS) > 0);
    assert!(view.fleet_total(M_MESSAGES_IN) > 0);
}

/// The plane is opt-in: with the default config (`report_cadence: 0.0`)
/// no collector exists, no alerts can fire, SLO rules have nowhere to
/// install, and the run is indistinguishable from one that never heard of
/// fleet telemetry (the committed churn/trace goldens pin the byte-level
/// half of this claim).
#[test]
fn default_config_keeps_the_plane_fully_dormant() {
    let hub = TelemetryHub::recording();
    let mut dist = DistributedLla::with_telemetry(
        base_workload(),
        DistConfig::default(),
        DistTelemetry::from_hub(&hub),
    );
    dist.run_rounds(50);
    assert!(dist.fleet_view().is_none(), "no collector without a cadence");
    assert!(dist.firing_alerts().is_empty());
    assert!(!dist.install_slo_rules(Vec::new()), "nowhere to install rules");
    assert_eq!(
        sum_over_agents(&mut dist, AgentTelemetry::emitted),
        0,
        "no agent may ship reports when the plane is off"
    );
    let events = hub.events.to_jsonl();
    assert!(!events.contains("\"alert\""), "no alert events without a collector");

    // An explicit 0.0 cadence is the same dormant configuration.
    let hub_explicit = TelemetryHub::recording();
    let mut explicit = DistributedLla::with_telemetry(
        base_workload(),
        DistConfig { report_cadence: 0.0, ..DistConfig::default() },
        DistTelemetry::from_hub(&hub_explicit),
    );
    explicit.run_rounds(50);
    assert_eq!(events, hub_explicit.events.to_jsonl());
}
