//! # `lla` — Lagrangian Latency Assignment
//!
//! A complete implementation of *"Online Optimization for Latency
//! Assignment in Distributed Real-Time Systems"* (Lumezanu, Bhola, Astley —
//! ICDCS 2008): a distributed, continuously running, price-based
//! optimization that assigns per-subtask latencies (and thereby
//! proportional-share scheduling parameters) to distributed soft real-time
//! applications so that total system utility is maximized, subject to
//! resource-capacity and end-to-end deadline constraints.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`lla-core`) — the task/subtask/utility model and the LLA
//!   optimizer itself.
//! * [`sim`] (`lla-sim`) — a discrete-event proportional-share scheduling
//!   simulator, streaming latency statistics, and the online
//!   model-error-correction closed loop.
//! * [`dist`] (`lla-dist`) — distributed deployments of the algorithm:
//!   actor-based virtual-time emulation and a threaded runtime.
//! * [`workloads`] (`lla-workloads`) — the paper's evaluation workloads
//!   and a random schedulable-workload generator.
//! * [`baselines`] (`lla-baselines`) — the classical deadline-slicing
//!   baselines the paper positions against (§7).
//! * [`spec`] (`lla-spec`) — a declarative text format for workload
//!   specifications, driving the `lla-cli` binary.
//! * [`telemetry`] (`lla-telemetry`) — zero-dependency metrics registry,
//!   structured event log, and health exposition shared by every layer.
//!
//! ## Quickstart
//!
//! ```rust
//! use lla::core::{Optimizer, OptimizerConfig};
//! use lla::workloads::base_workload;
//!
//! let mut opt = Optimizer::new(base_workload(), OptimizerConfig::default());
//! let outcome = opt.run_to_convergence(3_000);
//! assert!(outcome.converged);
//! // Every task meets its critical time.
//! let alloc = opt.allocation();
//! for task in opt.problem().tasks() {
//!     assert!(alloc.task_latency(task) <= task.critical_time() * 1.001);
//! }
//! ```
//!
//! See `examples/` for end-to-end scenarios (program trading, sensor
//! fusion, patient monitoring) and `crates/lla-bench` for the binaries that
//! regenerate every table and figure of the paper's evaluation.

#![forbid(unsafe_code)]

pub use lla_baselines as baselines;
pub use lla_core as core;
pub use lla_dist as dist;
pub use lla_sim as sim;
pub use lla_spec as spec;
pub use lla_telemetry as telemetry;
pub use lla_workloads as workloads;
