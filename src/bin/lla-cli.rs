//! `lla-cli` — run LLA on a workload specification file.
//!
//! ```text
//! lla-cli check <spec>                         parse and summarize
//! lla-cli optimize <spec> [options]            run LLA to convergence
//! lla-cli schedulability <spec> [options]      §5.4 schedulability verdict
//! lla-cli simulate <spec> [options]            closed loop with error correction
//! lla-cli telemetry <spec> [options]           run to convergence, expose health
//! lla-cli profile <spec> [options]             run to convergence, report
//!                                              where the wall time went
//! lla-cli fleet <spec> [options]               distributed run with the fleet
//!                                              telemetry plane on: per-agent
//!                                              table, SLO alert log, or
//!                                              labeled Prometheus exposition
//!
//! options:
//!   --iters N          iteration budget (default 10000)
//!   --policy P         adaptive | sign | fixed=<gamma>   (default sign)
//!   --csv FILE         write the optimizer trace as CSV
//!   --windows N        closed-loop windows (simulate; default 10)
//!   --window MS        window length in ms (simulate; default 2000)
//!   --no-correction    disable online model error correction (simulate)
//!   --format F         text | prometheus | json   (telemetry; default text)
//!                      text | folded | json       (profile; default text)
//!   --top N            rows in the profile table (profile; default 10)
//!   --diagnose         classify the run's convergence behavior
//!                      (telemetry; text and json formats); exits 3 when
//!                      the verdict is diverging or stalled, so scripts
//!                      and CI gates can alert on an unhealthy run
//!   --rounds N         protocol rounds to run (fleet; default 200)
//!   --seed S           network seed (fleet; default 0)
//!   --loss P           network loss probability in [0,1) (fleet; default 0)
//! ```
//!
//! `fleet` runs the spec on the virtual-time distributed deployment with
//! per-agent telemetry shipping enabled (one report per round). `--format
//! text` prints the collector's merged per-agent table plus the alert
//! timeline; `--format json` emits the alert events as JSONL; `--format
//! prometheus` dumps the full exposition including the `agent`-labeled
//! fleet series. Exits 3 while any SLO alert is still firing at the end
//! of the run, so CI gates can alert on an unhealthy fleet.
//!
//! `profile --format folded` emits folded stacks (`a;b;c <ns>` lines) that
//! any flamegraph renderer consumes directly.
//!
//! See `crates/lla-spec` for the specification format and
//! `examples/workloads/*.lla` for samples.

use lla::core::{
    analyze_schedulability, Optimizer, OptimizerConfig, Problem, SchedulabilityConfig,
    StepSizePolicy,
};
use lla::sim::{ClosedLoop, ClosedLoopConfig, SimConfig};
use lla::telemetry::{DiagnosticsEngine, MetricsRegistry, Profiler, Verdict};
use std::process::ExitCode;

struct Options {
    spec_path: String,
    iters: usize,
    policy: StepSizePolicy,
    csv: Option<String>,
    windows: usize,
    window_ms: f64,
    correction: bool,
    format: OutputFormat,
    diagnose: bool,
    top: usize,
    rounds: usize,
    seed: u64,
    loss: f64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Prometheus,
    Json,
    Folded,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: lla-cli <check|optimize|schedulability|simulate|telemetry|profile|fleet> \
         <spec.lla> [--iters N] [--policy adaptive|sign|fixed=G] [--csv FILE] \
         [--windows N] [--window MS] [--no-correction] \
         [--format text|prometheus|json|folded] [--top N] [--diagnose] \
         [--rounds N] [--seed S] [--loss P]"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        spec_path: String::new(),
        iters: 10_000,
        policy: StepSizePolicy::sign_adaptive(1.0),
        csv: None,
        windows: 10,
        window_ms: 2_000.0,
        correction: true,
        format: OutputFormat::Text,
        diagnose: false,
        top: 10,
        rounds: 200,
        seed: 0,
        loss: 0.0,
    };
    let mut it = args.iter();
    opts.spec_path = it.next().ok_or("missing spec path")?.clone();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => {
                opts.iters = it
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|_| "--iters must be an integer")?;
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                opts.policy = match v.as_str() {
                    "adaptive" => StepSizePolicy::adaptive(1.0),
                    "sign" => StepSizePolicy::sign_adaptive(1.0),
                    other => match other.strip_prefix("fixed=") {
                        Some(g) => StepSizePolicy::fixed(
                            g.parse().map_err(|_| "fixed=<gamma> needs a number")?,
                        ),
                        None => return Err(format!("unknown policy `{other}`")),
                    },
                };
            }
            "--csv" => opts.csv = Some(it.next().ok_or("--csv needs a path")?.clone()),
            "--windows" => {
                opts.windows = it
                    .next()
                    .ok_or("--windows needs a value")?
                    .parse()
                    .map_err(|_| "--windows must be an integer")?;
            }
            "--window" => {
                opts.window_ms = it
                    .next()
                    .ok_or("--window needs a value")?
                    .parse()
                    .map_err(|_| "--window must be a number (ms)")?;
            }
            "--no-correction" => opts.correction = false,
            "--diagnose" => opts.diagnose = true,
            "--rounds" => {
                opts.rounds = it
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|_| "--rounds must be an integer")?;
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
            }
            "--loss" => {
                opts.loss = it
                    .next()
                    .ok_or("--loss needs a value")?
                    .parse()
                    .map_err(|_| "--loss must be a probability")?;
                if !(0.0..1.0).contains(&opts.loss) {
                    return Err("--loss must be in [0, 1)".to_owned());
                }
            }
            "--top" => {
                opts.top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|_| "--top must be an integer")?;
            }
            "--format" => {
                opts.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "text" => OutputFormat::Text,
                    "prometheus" => OutputFormat::Prometheus,
                    "json" => OutputFormat::Json,
                    "folded" => OutputFormat::Folded,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn load(path: &str) -> Result<Problem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    lla_spec::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn summarize(problem: &Problem) {
    println!(
        "{} resources, {} tasks, {} subtasks, {} paths",
        problem.resources().len(),
        problem.tasks().len(),
        problem.num_subtasks(),
        problem.num_paths()
    );
    for task in problem.tasks() {
        println!(
            "  task {:>12}: {} subtasks, {} paths, critical time {}ms, rate {:.3}/s",
            task.name(),
            task.len(),
            task.graph().paths().len(),
            task.critical_time(),
            task.trigger().mean_rate() * 1_000.0
        );
    }
}

fn cmd_optimize(opts: &Options) -> Result<(), String> {
    let problem = load(&opts.spec_path)?;
    let mut opt = Optimizer::new(
        problem,
        OptimizerConfig { step_policy: opts.policy, ..OptimizerConfig::default() },
    );
    let outcome = opt.run_to_convergence(opts.iters);
    println!(
        "converged: {} after {} iterations, utility {:.3}, feasible {}",
        outcome.converged, outcome.iterations, outcome.final_utility, outcome.feasible
    );
    let alloc = opt.allocation();
    for task in opt.problem().tasks() {
        println!(
            "task {:>12}: end-to-end {:>8.2}ms / {}ms",
            task.name(),
            alloc.task_latency(task),
            task.critical_time()
        );
        let shares = alloc.shares(opt.problem(), task);
        for (s, sub) in task.subtasks().iter().enumerate() {
            println!(
                "    {:>12} @ {:>10}: latency {:>8.2}ms share {:.4}",
                sub.name(),
                opt.problem().resource(sub.resource()).name(),
                alloc.latency(task.id().index(), s),
                shares[s]
            );
        }
    }
    for r in opt.problem().resources() {
        println!(
            "resource {:>10}: usage {:.4} / {:.2}",
            r.name(),
            opt.problem().resource_usage(r.id(), alloc.lats()),
            r.availability()
        );
    }
    if let Some(path) = &opts.csv {
        std::fs::write(path, opt.trace().to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote trace to {path}");
    }
    Ok(())
}

fn cmd_telemetry(opts: &Options) -> Result<ExitCode, String> {
    let problem = load(&opts.spec_path)?;
    let registry = MetricsRegistry::new();
    let mut opt = Optimizer::new(
        problem,
        OptimizerConfig { step_policy: opts.policy, ..OptimizerConfig::default() },
    );
    opt.attach_telemetry(&registry);
    if opts.diagnose {
        // Step manually so every iteration feeds the diagnostics engine;
        // stop early once the convergence detector fires.
        let names: Vec<String> =
            opt.problem().resources().iter().map(|r| r.name().to_string()).collect();
        let mut engine = DiagnosticsEngine::new().with_resource_names(names);
        for _ in 0..opts.iters {
            opt.step();
            engine.push(opt.diag_sample());
            if opt.has_converged() {
                break;
            }
        }
        let diagnosis = engine.diagnose();
        match opts.format {
            OutputFormat::Text => print!("{}", diagnosis.render()),
            OutputFormat::Json => println!("{}", diagnosis.to_json()),
            OutputFormat::Prometheus | OutputFormat::Folded => {
                return Err("--diagnose supports --format text|json".to_owned())
            }
        }
        // An unhealthy verdict is a distinct, scriptable exit code (3),
        // separated from usage errors (2) and I/O failures (1).
        return Ok(match diagnosis.verdict {
            Verdict::Diverging | Verdict::Stalled => ExitCode::from(3),
            _ => ExitCode::SUCCESS,
        });
    }
    opt.run_to_convergence(opts.iters);
    match opts.format {
        OutputFormat::Text => println!("{}", opt.health_snapshot()),
        OutputFormat::Prometheus => print!("{}", registry.prometheus_text()),
        OutputFormat::Json => println!("{}", opt.health_snapshot().to_json()),
        OutputFormat::Folded => {
            return Err("telemetry supports --format text|prometheus|json".to_owned())
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Nanoseconds with an adaptive unit, for the profile table.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn cmd_profile(opts: &Options) -> Result<(), String> {
    let problem = load(&opts.spec_path)?;
    let mut opt = Optimizer::new(
        problem,
        OptimizerConfig { step_policy: opts.policy, ..OptimizerConfig::default() },
    );
    let profiler = Profiler::recording();
    opt.attach_profiler(&profiler);
    let outcome = opt.run_to_convergence(opts.iters);
    let snapshot = profiler.snapshot();
    match opts.format {
        OutputFormat::Text => {
            println!(
                "converged: {} after {} iterations (wall {})",
                outcome.converged,
                outcome.iterations,
                fmt_ns(snapshot.root_total_ns())
            );
            let frames = snapshot.top_self(opts.top);
            let total = snapshot.root_total_ns().max(1) as f64;
            let path_width =
                frames.iter().map(|f| f.path.chars().count()).max().unwrap_or(5).max(5);
            println!(
                "{:>path_width$} {:>10} {:>10} {:>10} {:>7}",
                "phase", "calls", "total", "self", "self%"
            );
            for f in &frames {
                println!(
                    "{:>path_width$} {:>10} {:>10} {:>10} {:>6.1}%",
                    f.path,
                    f.calls,
                    fmt_ns(f.total_ns),
                    fmt_ns(f.self_ns),
                    f.self_ns as f64 / total * 100.0
                );
            }
        }
        OutputFormat::Folded => print!("{}", snapshot.folded_ns()),
        OutputFormat::Json => println!("{}", snapshot.to_json()),
        OutputFormat::Prometheus => {
            return Err("profile supports --format text|folded|json".to_owned())
        }
    }
    Ok(())
}

fn cmd_fleet(opts: &Options) -> Result<ExitCode, String> {
    use lla::dist::{DistConfig, DistTelemetry, DistributedLla, NetworkModel};
    let problem = load(&opts.spec_path)?;
    let hub = lla::telemetry::TelemetryHub::recording();
    let config = DistConfig {
        network: if opts.loss > 0.0 {
            NetworkModel::lossy(0.5, 1.0, opts.loss)
        } else {
            NetworkModel::perfect()
        },
        seed: opts.seed,
        report_cadence: DistConfig::default().round_length,
        ..DistConfig::default()
    };
    let mut dist = DistributedLla::with_telemetry(problem, config, DistTelemetry::from_hub(&hub));
    dist.run_rounds(opts.rounds);
    let firing = dist.firing_alerts();
    let alerts: Vec<lla::telemetry::Event> =
        hub.events.snapshot().into_iter().filter(|e| e.kind == "alert").collect();
    match opts.format {
        OutputFormat::Text => {
            let view = dist.fleet_view().expect("fleet plane is on");
            print!("{}", view.render_table());
            if alerts.is_empty() {
                println!("alerts: none");
            } else {
                println!("alerts:");
                for e in &alerts {
                    let s = |k: &str| match e.field(k) {
                        Some(v) => v.to_string(),
                        None => "?".to_owned(),
                    };
                    println!(
                        "  t={:>8.1} {:<9} {} ({} {})",
                        e.time,
                        s("state"),
                        s("rule"),
                        s("metric"),
                        s("value")
                    );
                }
            }
            for f in &firing {
                println!("FIRING: {} ({}) since t={:.1}", f.rule, f.severity.as_str(), f.since);
            }
        }
        OutputFormat::Json => {
            for e in &alerts {
                println!("{}", e.to_json());
            }
        }
        OutputFormat::Prometheus => print!("{}", hub.metrics.prometheus_text()),
        OutputFormat::Folded => {
            return Err("fleet supports --format text|json|prometheus".to_owned())
        }
    }
    // A fleet still in alert at the end of the run is scriptably
    // unhealthy — same exit-code contract as `telemetry --diagnose`.
    Ok(if firing.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(3) })
}

fn cmd_schedulability(opts: &Options) -> Result<(), String> {
    let problem = load(&opts.spec_path)?;
    let config = SchedulabilityConfig {
        optimizer: OptimizerConfig { step_policy: opts.policy, ..OptimizerConfig::default() },
        max_iters: opts.iters,
        ..SchedulabilityConfig::default()
    };
    let verdict = analyze_schedulability(problem, &config);
    println!("{verdict:?}");
    Ok(())
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let problem = load(&opts.spec_path)?;
    let mut cl = ClosedLoop::new(
        problem,
        OptimizerConfig { step_policy: opts.policy, ..OptimizerConfig::default() },
        SimConfig::default(),
        ClosedLoopConfig {
            window: opts.window_ms,
            correction_enabled: opts.correction,
            ..Default::default()
        },
    );
    cl.run_windows(opts.windows);
    println!("{:>10} {:>12} {:>14}", "time_s", "utility", "miss_rates");
    for rec in cl.history() {
        println!(
            "{:>10.1} {:>12.2} {:>14}",
            rec.time / 1_000.0,
            rec.utility,
            rec.miss_rate
                .iter()
                .map(|m| format!("{:.1}%", m * 100.0))
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    if let Some(path) = &opts.csv {
        let mut csv = String::from("time_ms,utility\n");
        for rec in cl.history() {
            csv.push_str(&format!("{},{}\n", rec.time, rec.utility));
        }
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote window telemetry to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let opts = match parse_args(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "check" => load(&opts.spec_path).map(|p| summarize(&p)).map(|()| ExitCode::SUCCESS),
        "optimize" => cmd_optimize(&opts).map(|()| ExitCode::SUCCESS),
        "schedulability" => cmd_schedulability(&opts).map(|()| ExitCode::SUCCESS),
        "simulate" => cmd_simulate(&opts).map(|()| ExitCode::SUCCESS),
        "telemetry" => cmd_telemetry(&opts),
        "profile" => cmd_profile(&opts).map(|()| ExitCode::SUCCESS),
        "fleet" => cmd_fleet(&opts),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
