//! Program trading — the paper's motivating application (§1).
//!
//! Market data arrives over a constrained network link, is parsed and fanned
//! out to a trading-strategy analyzer and a risk checker; orders leave over
//! a second link. Bandwidth and CPU are both constrained, and the trading
//! path is far more latency-critical than the end-of-day analytics task
//! that shares the same machines. LLA balances them by utility, and — the
//! point of this example — *re-balances on the fly* when half of cpu1 is
//! suddenly reserved elsewhere.
//!
//! Run with `cargo run --example program_trading`.

use lla::core::{
    Aggregation, Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind,
    TaskBuilder, TaskId, TriggerSpec, UtilityFn,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::NetworkLink)
            .with_lag(0.5)
            .with_name("feed-link"),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0).with_name("cpu0"),
        Resource::new(ResourceId::new(2), ResourceKind::Cpu).with_lag(1.0).with_name("cpu1"),
        Resource::new(ResourceId::new(3), ResourceKind::NetworkLink)
            .with_lag(0.5)
            .with_name("order-link"),
    ];

    // Trading task: receive -> parse -> {strategy -> send order, risk check}.
    // Inelastic-ish: almost all value is lost if we blow the 25ms budget.
    let mut b = TaskBuilder::new("trading");
    let recv = b.subtask("receive", ResourceId::new(0), 1.0);
    let parse = b.subtask("parse", ResourceId::new(1), 2.0);
    let strategy = b.subtask("strategy", ResourceId::new(2), 3.0);
    let risk = b.subtask("risk", ResourceId::new(1), 1.5);
    let send = b.subtask("send-order", ResourceId::new(3), 1.0);
    b.edge(recv, parse)?;
    b.edge(parse, strategy)?;
    b.edge(parse, risk)?;
    b.edge(strategy, send)?;
    // The sum-aggregated latency bounds every path, so the inelastic
    // utility is calibrated against the 25ms total budget directly.
    b.critical_time(25.0)
        .utility(UtilityFn::smooth_inelastic(100.0, 25.0, 6.0))
        .trigger(TriggerSpec::Bursty { period: 50.0, burst: 2 })
        .aggregation(Aggregation::Sum);
    let trading = b.build(TaskId::new(0))?;

    // Analytics task: a work-conserving consumer of whatever is left.
    let mut b = TaskBuilder::new("analytics");
    let pull = b.subtask("pull", ResourceId::new(0), 2.0);
    let aggregate = b.subtask("aggregate", ResourceId::new(2), 8.0);
    let report = b.subtask("report", ResourceId::new(1), 4.0);
    b.chain(&[pull, aggregate, report])?;
    b.critical_time(400.0)
        .utility(UtilityFn::linear_for_deadline(1.0, 400.0))
        .trigger(TriggerSpec::Periodic { period: 200.0 });
    let analytics = b.build(TaskId::new(1))?;

    let problem = Problem::new(resources, vec![trading, analytics])?;
    let mut opt = Optimizer::new(problem, OptimizerConfig::default());
    let outcome = opt.run_to_convergence(5_000);
    println!("initial convergence: {outcome:?}\n");
    report_state(&opt, "before cpu1 degradation");

    // 40% of cpu1 is suddenly reserved by another tenant: LLA adapts.
    opt.set_resource_availability(ResourceId::new(2), 0.6).unwrap();
    let outcome = opt.run_to_convergence(10_000);
    println!("\nre-convergence after losing 40% of cpu1: {outcome:?}\n");
    report_state(&opt, "after cpu1 degradation");
    assert!(outcome.converged, "the degraded system is still schedulable");

    let alloc = opt.allocation();
    let trading_lat = alloc.task_latency(&opt.problem().tasks()[0]);
    assert!(
        trading_lat <= 25.0 * 1.001,
        "trading must still meet its critical time, got {trading_lat}"
    );
    Ok(())
}

fn report_state(opt: &Optimizer, label: &str) {
    let alloc = opt.allocation();
    println!("--- {label} ---");
    for task in opt.problem().tasks() {
        println!(
            "  {:>9}: end-to-end {:>6.1}ms / deadline {:>5.0}ms, utility {:>7.2}",
            task.name(),
            alloc.task_latency(task),
            task.critical_time(),
            task.utility(&alloc.lats()[task.id().index()])
        );
    }
    for r in opt.problem().resources() {
        println!(
            "  {:>10}: usage {:.3} / {:.2}",
            r.name(),
            opt.problem().resource_usage(r.id(), alloc.lats()),
            r.availability()
        );
    }
}
