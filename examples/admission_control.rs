//! Admission control layered on top of LLA (§3.2's "admission control is
//! layered on top of our approach").
//!
//! The ward system from `examples/workloads/patient_monitoring.lla` is
//! running; new monitoring tasks arrive one by one. Each is *probed*:
//! admitted only if the expanded system remains schedulable and the
//! already-admitted tasks lose at most 25% of their utility.
//!
//! Run with `cargo run --example admission_control`.

use lla::core::{
    probe_admission, AdmissionConfig, AdmissionDecision, Optimizer, OptimizerConfig, ResourceId,
    SchedulabilityConfig, StepSizePolicy, TaskBuilder, TriggerSpec, UtilityFn,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string("examples/workloads/patient_monitoring.lla")?;
    let mut problem = lla::spec::parse(&text)?;
    println!(
        "starting system: {} tasks on {} resources",
        problem.tasks().len(),
        problem.resources().len()
    );

    let admission = AdmissionConfig {
        schedulability: SchedulabilityConfig {
            optimizer: OptimizerConfig {
                step_policy: StepSizePolicy::sign_adaptive(1.0),
                ..OptimizerConfig::default()
            },
            max_iters: 8_000,
            ..SchedulabilityConfig::default()
        },
        max_incumbent_degradation: Some(0.25),
    };

    // A stream of new bedside monitors wanting in.
    let candidate = |i: usize| {
        let mut b = TaskBuilder::new(format!("monitor{i}"));
        let sample = b.subtask("sample", ResourceId::new(0), 6.0);
        let classify = b.subtask("classify", ResourceId::new(1), 8.0);
        b.edge(sample, classify).expect("valid indices");
        b.critical_time(250.0)
            .utility(UtilityFn::linear_for_deadline(1.5, 250.0))
            .trigger(TriggerSpec::Periodic { period: 60.0 });
        b
    };

    let mut admitted = 0usize;
    for i in 0..10 {
        match probe_admission(&problem, &candidate(i), &admission)? {
            AdmissionDecision::Admit {
                problem: expanded,
                incumbent_utility_before,
                incumbent_utility_after,
                total_utility,
                ..
            } => {
                println!(
                    "monitor{i}: ADMIT   (incumbents {incumbent_utility_before:.1} -> \
                     {incumbent_utility_after:.1}, total {total_utility:.1})"
                );
                problem = expanded;
                admitted += 1;
            }
            AdmissionDecision::RejectUnschedulable { verdict } => {
                println!("monitor{i}: REJECT  unschedulable ({verdict:?})");
                break;
            }
            AdmissionDecision::RejectDegradation { before, after } => {
                println!(
                    "monitor{i}: REJECT  incumbents would drop {before:.1} -> {after:.1} \
                     (more than the 25% budget)"
                );
                break;
            }
        }
    }

    println!(
        "\nadmitted {admitted} extra monitors; final system has {} tasks",
        problem.tasks().len()
    );
    let mut opt = Optimizer::new(problem, admission.schedulability.optimizer);
    let outcome = opt.run_to_convergence(10_000);
    println!(
        "final run: converged={} utility={:.1} feasible={}",
        outcome.converged, outcome.final_utility, outcome.feasible
    );
    assert!(admitted >= 1, "the ward should have room for at least one more monitor");
    assert!(outcome.converged);
    Ok(())
}
