//! Using LLA as a schedulability test (§5.4).
//!
//! Builds progressively heavier variants of a workload and asks
//! [`analyze_schedulability`] for a verdict: convergence to a feasible
//! allocation means schedulable; persistent constraint violations without
//! convergence mean unschedulable.
//!
//! Run with `cargo run --example schedulability_check`.

use lla::core::{
    analyze_schedulability, Problem, Resource, ResourceId, ResourceKind, SchedulabilityConfig,
    SchedulabilityVerdict, TaskBuilder, TaskId, UtilityFn,
};

/// `n` identical two-stage pipelines over two CPUs with the given deadline.
fn workload(n: usize, deadline: f64) -> Problem {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
    ];
    let mut tasks = Vec::new();
    for i in 0..n {
        let mut b = TaskBuilder::new(format!("pipeline{i}"));
        let a = b.subtask("stage0", ResourceId::new(0), 2.0);
        let c = b.subtask("stage1", ResourceId::new(1), 3.0);
        b.edge(a, c).expect("valid indices");
        b.critical_time(deadline).utility(UtilityFn::linear_for_deadline(2.0, deadline));
        tasks.push(b.build(TaskId::new(i)).expect("valid task"));
    }
    Problem::new(resources, tasks).expect("valid problem")
}

fn main() {
    let config = SchedulabilityConfig::default();
    println!("deadline 60ms, scaling the number of pipelines on 2 CPUs:\n");
    let mut last_schedulable = 0;
    for n in [2usize, 4, 8, 16, 32] {
        let verdict = analyze_schedulability(workload(n, 60.0), &config);
        let text = match &verdict {
            SchedulabilityVerdict::Schedulable { iterations, utility } => {
                last_schedulable = n;
                format!("SCHEDULABLE   (converged in {iterations} iters, utility {utility:.1})")
            }
            SchedulabilityVerdict::Unschedulable {
                max_violation_ratio,
                max_resource_ratio,
                ..
            } => format!(
                "UNSCHEDULABLE (critical paths up to {max_violation_ratio:.2}x, \
                 resources up to {max_resource_ratio:.2}x)"
            ),
            SchedulabilityVerdict::Inconclusive { oscillation } => {
                format!("INCONCLUSIVE  (utility oscillation {oscillation:.2})")
            }
        };
        println!("  {n:>3} pipelines: {text}");
    }

    // Capacity math: each pipeline needs >= (2+1)/60 + (3+1)/60 of its
    // stage CPUs just to exist within the deadline; the binding stage is
    // stage1 with 4/60 per task, so ~15 tasks saturate CPU1 even before
    // accounting for the deadline split. The verdicts must bracket that.
    assert!(last_schedulable >= 4, "small counts must be schedulable");
    let verdict = analyze_schedulability(workload(32, 60.0), &config);
    assert!(
        !verdict.is_schedulable(),
        "32 pipelines on 2 CPUs with 60ms deadlines cannot be schedulable"
    );
    println!("\nverdicts bracket the capacity limit as expected");
}
