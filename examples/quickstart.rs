//! Quickstart: model a two-stage pipeline plus a competing single-stage
//! task, run LLA to convergence, and inspect the latency/share assignment.
//!
//! Run with `cargo run --example quickstart`.

use lla::core::{
    Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId,
    TriggerSpec, UtilityFn,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two CPUs with a 1ms proportional-share scheduling lag.
    let cpus = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0).with_name("cpu0"),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0).with_name("cpu1"),
    ];

    // Task 0: parse (cpu0) -> analyze (cpu1), 40ms deadline, elastic.
    let mut b = TaskBuilder::new("pipeline");
    let parse = b.subtask("parse", ResourceId::new(0), 2.0);
    let analyze = b.subtask("analyze", ResourceId::new(1), 3.0);
    b.edge(parse, analyze)?;
    b.critical_time(40.0)
        .utility(UtilityFn::linear_for_deadline(2.0, 40.0))
        .trigger(TriggerSpec::Periodic { period: 100.0 });
    let pipeline = b.build(TaskId::new(0))?;

    // Task 1: a batch job on cpu1 with a loose 80ms deadline.
    let mut b = TaskBuilder::new("batch");
    b.subtask("crunch", ResourceId::new(1), 6.0);
    b.critical_time(80.0)
        .utility(UtilityFn::linear_for_deadline(2.0, 80.0))
        .trigger(TriggerSpec::Periodic { period: 100.0 });
    let batch = b.build(TaskId::new(1))?;

    let problem = Problem::new(cpus, vec![pipeline, batch])?;
    let mut opt = Optimizer::new(problem, OptimizerConfig::default());
    let outcome = opt.run_to_convergence(3_000);

    println!(
        "converged: {} after {} iterations, total utility {:.2}\n",
        outcome.converged, outcome.iterations, outcome.final_utility
    );

    let alloc = opt.allocation();
    for task in opt.problem().tasks() {
        let shares = alloc.shares(opt.problem(), task);
        println!(
            "task {:>8}: deadline {:>5.1}ms, end-to-end {:>5.1}ms",
            task.name(),
            task.critical_time(),
            alloc.task_latency(task)
        );
        for (s, sub) in task.subtasks().iter().enumerate() {
            println!(
                "    {:>8} on {}: latency {:>5.1}ms, share {:.3}",
                sub.name(),
                opt.problem().resource(sub.resource()).name(),
                alloc.latency(task.id().index(), s),
                shares[s]
            );
        }
    }

    for r in opt.problem().resources() {
        println!(
            "resource {}: share sum {:.3} of availability {:.2}",
            r.name(),
            opt.problem().resource_usage(r.id(), alloc.lats()),
            r.availability()
        );
    }

    assert!(outcome.converged && outcome.feasible);
    Ok(())
}
