//! Patient monitoring with the full measure–correct–reoptimize loop.
//!
//! A hospital ward: a *vitals alerting* pipeline with a hard-ish 150ms
//! budget competes with a *trend analysis* task on the same two CPUs. The
//! optimizer starts from the conservative worst-case model and the closed
//! loop (the paper's §6 mechanism) measures actual high-percentile
//! latencies in the discrete-event simulator, corrects the model, and
//! re-allocates — freeing share for the trend task without endangering the
//! alerting deadline.
//!
//! Run with `cargo run --example patient_monitoring`.

use lla::core::{
    Aggregation, Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind,
    StepSizePolicy, TaskBuilder, TaskId, TriggerSpec, UtilityFn,
};
use lla::sim::{ClosedLoop, ClosedLoopConfig, SimConfig};

fn build_problem() -> Result<Problem, Box<dyn std::error::Error>> {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu)
            .with_lag(2.0)
            .with_availability(0.95)
            .with_name("bedside"),
        Resource::new(ResourceId::new(1), ResourceKind::Cpu)
            .with_lag(2.0)
            .with_availability(0.95)
            .with_name("ward-server"),
    ];

    // Alerting: sample vitals (bedside) -> classify (ward server).
    // Smooth-inelastic utility: value collapses near the 150ms budget.
    let mut b = TaskBuilder::new("alerting");
    let sample = b.subtask("sample", ResourceId::new(0), 4.0);
    let classify = b.subtask("classify", ResourceId::new(1), 6.0);
    b.edge(sample, classify)?;
    b.critical_time(150.0)
        .utility(UtilityFn::smooth_inelastic(50.0, 150.0, 5.0))
        .trigger(TriggerSpec::Periodic { period: 50.0 })
        .aggregation(Aggregation::Sum);
    let alerting = b.build(TaskId::new(0))?;

    // Trend analysis: elastic; any extra share converts into value.
    let mut b = TaskBuilder::new("trends");
    let collect = b.subtask("collect", ResourceId::new(0), 10.0);
    let model = b.subtask("model", ResourceId::new(1), 14.0);
    b.edge(collect, model)?;
    b.critical_time(900.0)
        .utility(UtilityFn::negative_latency())
        .trigger(TriggerSpec::Periodic { period: 120.0 })
        .aggregation(Aggregation::Sum);
    let trends = b.build(TaskId::new(1))?;

    Ok(Problem::new(resources, vec![alerting, trends])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let optimizer_config = OptimizerConfig {
        step_policy: StepSizePolicy::sign_adaptive(1.0),
        ..OptimizerConfig::default()
    };
    let mut loop_ = ClosedLoop::new(
        build_problem()?,
        optimizer_config,
        SimConfig::default(),
        ClosedLoopConfig { window: 2_000.0, correction_enabled: false, ..Default::default() },
    );

    println!("phase 1: pure worst-case model (no error correction)");
    loop_.run_windows(3);
    print_window(&loop_, "model-only");
    let trends_share_before = loop_.history().last().unwrap().shares[1][0];

    println!("\nphase 2: enable online model error correction (§6.3)");
    loop_.set_correction_enabled(true);
    loop_.run_windows(10);
    print_window(&loop_, "corrected");
    let last = loop_.history().last().unwrap();
    let trends_share_after = last.shares[1][0];

    println!(
        "\ntrend-analysis share: {trends_share_before:.3} -> {trends_share_after:.3} \
         (error correction frees share for the elastic task)"
    );
    // Deadline safety throughout: the alerting task must never miss.
    for rec in loop_.history() {
        assert!(rec.miss_rate[0] < 0.01, "alerting deadline misses appeared: {:?}", rec.miss_rate);
    }
    assert!(trends_share_after > trends_share_before);

    // Sanity: re-run a fresh optimizer at the final corrections and verify
    // it reproduces the same shares (the loop is at a fixed point).
    let mut verify = Optimizer::new(build_problem()?, optimizer_config);
    for (t, row) in last.corrections.iter().enumerate() {
        for (s, &e) in row.iter().enumerate() {
            verify.set_correction(lla::core::SubtaskId::new(TaskId::new(t), s), e);
        }
    }
    verify.run_to_convergence(10_000);
    let fresh = verify.allocation().shares(verify.problem(), &verify.problem().tasks()[1].clone());
    println!("fresh solve at final corrections gives trends share {:.3}", fresh[0]);
    Ok(())
}

fn print_window(loop_: &ClosedLoop, label: &str) {
    let rec = loop_.history().last().expect("windows ran");
    println!(
        "  [{label}] t={:>6.0}s utility={:>8.1} shares: alerting {:?} trends {:?} miss rates {:?}",
        rec.time / 1000.0,
        rec.utility,
        rec.shares[0].iter().map(|s| (s * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        rec.shares[1].iter().map(|s| (s * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        rec.miss_rate
    );
}
