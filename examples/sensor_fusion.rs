//! Sensor fusion over a *distributed* deployment of LLA.
//!
//! A pull-based aggregation task (the paper's Task 2 archetype) and a
//! client/server query task share CPUs and links across an emulated
//! network. Each resource runs its own price agent and each task its own
//! controller; they coordinate purely through price/latency messages over
//! a lossy, jittery network — and still converge to a feasible allocation
//! close to the centralized optimum.
//!
//! Run with `cargo run --example sensor_fusion`.

use lla::core::{
    Optimizer, OptimizerConfig, Problem, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId,
    UtilityFn,
};
use lla::dist::{DistConfig, DistributedLla, NetworkModel};

fn build_problem() -> Result<Problem, Box<dyn std::error::Error>> {
    let resources = vec![
        Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0).with_name("gateway"),
        Resource::new(ResourceId::new(1), ResourceKind::NetworkLink)
            .with_lag(0.5)
            .with_name("uplink"),
        Resource::new(ResourceId::new(2), ResourceKind::Cpu).with_lag(1.0).with_name("fusion-node"),
        Resource::new(ResourceId::new(3), ResourceKind::NetworkLink)
            .with_lag(0.5)
            .with_name("downlink"),
    ];

    // Fusion task: request -> fetch -> fuse -> {alert, archive}.
    let mut b = TaskBuilder::new("fusion");
    let request = b.subtask("request", ResourceId::new(0), 1.0);
    let fetch = b.subtask("fetch", ResourceId::new(1), 3.0);
    let fuse = b.subtask("fuse", ResourceId::new(2), 5.0);
    let alert = b.subtask("alert", ResourceId::new(3), 1.0);
    let archive = b.subtask("archive", ResourceId::new(0), 2.0);
    b.edge(request, fetch)?;
    b.edge(fetch, fuse)?;
    b.edge(fuse, alert)?;
    b.edge(fuse, archive)?;
    b.critical_time(60.0).utility(UtilityFn::linear_for_deadline(2.0, 60.0));
    let fusion = b.build(TaskId::new(0))?;

    // Query task: query -> lookup -> respond (client/server chain).
    let mut b = TaskBuilder::new("query");
    let q = b.subtask("query", ResourceId::new(1), 1.0);
    let l = b.subtask("lookup", ResourceId::new(2), 3.0);
    let r = b.subtask("respond", ResourceId::new(3), 1.5);
    b.chain(&[q, l, r])?;
    b.critical_time(45.0).utility(UtilityFn::linear_for_deadline(2.0, 45.0));
    let query = b.build(TaskId::new(1))?;

    Ok(Problem::new(resources, vec![fusion, query])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Centralized reference.
    let mut reference = Optimizer::new(build_problem()?, OptimizerConfig::default());
    reference.run_to_convergence(5_000);
    println!("centralized reference utility: {:.2}", reference.utility());

    // Distributed deployment over a lossy network: 1-3ms delays, 5% loss.
    let mut dist = DistributedLla::new(
        build_problem()?,
        DistConfig {
            network: NetworkModel::lossy(1.0, 2.0, 0.05),
            seed: 7,
            ..DistConfig::default()
        },
    );
    dist.run_rounds(2_000);

    println!(
        "distributed utility after {} rounds: {:.2} ({} messages, {} dropped)",
        dist.rounds(),
        dist.utility(),
        dist.messages_sent(),
        dist.messages_dropped()
    );

    let alloc = dist.allocation();
    for task in dist.problem().tasks() {
        println!(
            "  {:>7}: end-to-end {:>5.1}ms / deadline {:>4.0}ms",
            task.name(),
            alloc.task_latency(task),
            task.critical_time()
        );
    }

    let gap = (dist.utility() - reference.utility()).abs() / reference.utility().abs().max(1.0);
    println!("relative gap to centralized optimum: {:.2}%", gap * 100.0);
    assert!(dist.problem().is_feasible(alloc.lats(), 1e-2), "distributed allocation feasible");
    assert!(gap < 0.05, "distributed result should be within 5% of centralized");
    Ok(())
}
