//! Fuzz target: the frame decoder must never panic, and anything it
//! accepts must be canonical — re-encoding an accepted message yields
//! the input bytes exactly. Seeded from `corpus/frame_decode/` (valid
//! encodings plus the committed corrupted-frame vectors).

#![no_main]

use libfuzzer_sys::fuzz_target;
use lla_dist::codec;

fuzz_target!(|data: &[u8]| {
    // Single-frame decode → validate: may reject, must not panic.
    if let Ok(msg) = codec::decode(data) {
        let _ = codec::validate(&msg);
        // The codec has exactly one encoding per message, so decode and
        // encode are mutually inverse on accepted inputs.
        assert_eq!(codec::encode(&msg), data, "accepted frame must be canonical");
    }
    // Stream walking must make progress and terminate.
    let mut at = 0usize;
    while at < data.len() {
        match codec::decode_frame(&data[at..]) {
            Ok((_, used)) => {
                assert!(used > 0, "stream decode must consume bytes");
                at += used;
            }
            Err(_) => break,
        }
    }
});
