//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API subset the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over half-open and inclusive integer/float ranges, [`Rng::gen_bool`],
//! [`Rng::gen`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid and fully deterministic for a given seed, which is all the
//! workspace requires (reproducible workload generation, network fault
//! sampling, and statistical tests with generous tolerances). The streams
//! differ from upstream `rand`'s `StdRng` (ChaCha12), so seeds are not
//! byte-compatible across the two implementations.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` from 53 random mantissa bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types over which a uniform sample can be drawn from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is below
                // 2^-64 per draw, immaterial for simulation workloads.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + hi128 as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == hi {
                    return lo;
                }
                if hi - lo == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    ///
    /// Not byte-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// equally deterministic for a fixed seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(3usize..=17);
            assert!((3..=17).contains(&y));
            let f = r.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
        assert_eq!(r.gen_range(4usize..=4), 4);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle leaving order intact is ~impossible");
        assert!([1, 2, 3].choose(&mut r).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
