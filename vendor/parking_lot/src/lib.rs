//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API subset the workspace uses is provided: [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no `Result`).
//! Poisoning — the one observable difference from `std` — is swallowed by
//! recovering the inner guard, exactly the semantics `parking_lot` has by
//! not poisoning at all.

use std::fmt;

/// A mutex whose [`lock`](Mutex::lock) returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose lock methods return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
