//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses only `crossbeam::channel`'s unbounded MPSC channels
//! (single consumer per receiver), which `std::sync::mpsc` covers exactly:
//! `Sender` is `Clone + Send + Sync`, `Receiver` supports `recv`,
//! `try_recv`, and `recv_timeout` with the same error enums. This module
//! re-exports the std types under the crossbeam names.

/// Multi-producer channels (std-backed subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_clones() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_variants() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }
}
