//! Offline stand-in for the `rayon` crate.
//!
//! The workspace only needs scoped fork-join parallelism (`rayon::scope`
//! with `Scope::spawn`) and `current_num_threads` for sizing the fan-out.
//! `std::thread::scope` provides the same structured-concurrency guarantee
//! (every spawned closure joins before `scope` returns), so this stand-in
//! maps the rayon API onto plain scoped OS threads. Unlike real rayon there
//! is no work-stealing pool: each `spawn` starts a fresh thread, which is
//! fine for the coarse per-worker task ranges the LLA plan kernels use.

use std::num::NonZeroUsize;

/// Returns the number of worker threads a fork-join region should target.
///
/// Real rayon reports its global pool size, which honors the
/// `RAYON_NUM_THREADS` environment variable; this stand-in does the same
/// (any positive integer wins) and otherwise reports the machine's
/// available parallelism (minimum 1). The override lets tests exercise
/// multi-worker fan-out even on single-core runners.
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// A scope handle for spawning borrowed closures, mirroring `rayon::Scope`.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` to run concurrently with the rest of the scope. The
    /// closure may borrow from outside the scope; `scope` joins every
    /// spawned closure before it returns.
    ///
    /// Rayon's `Scope::spawn` passes the scope handle back into the
    /// closure; the workspace never uses it for nested spawns, so this
    /// stand-in takes a plain `FnOnce()`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Creates a fork-join scope, mirroring `rayon::scope`. All closures
/// spawned on the scope complete before this function returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::{current_num_threads, scope};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn spawns_may_borrow_disjoint_chunks() {
        let mut data = vec![0u64; 16];
        let (lo, hi) = data.split_at_mut(8);
        scope(|s| {
            s.spawn(|| lo.iter_mut().for_each(|x| *x += 1));
            s.spawn(|| hi.iter_mut().for_each(|x| *x += 2));
        });
        assert_eq!(data[0], 1);
        assert_eq!(data[15], 2);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(current_num_threads() >= 1);
    }
}
