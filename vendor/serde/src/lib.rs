//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` names (traits in the type
//! namespace, no-op derive macros in the macro namespace) so the model
//! types' `#[derive(Serialize, Deserialize)]` annotations compile without
//! network access. No serializer exists in this workspace, so no code
//! depends on actual trait implementations; the derives expand to nothing
//! (see `serde_derive`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name. Never implemented by
/// the no-op derive; present so `use serde::Serialize` resolves.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name. Never implemented by
/// the no-op derive; present so `use serde::Deserialize` resolves.
pub trait Deserialize<'de>: Sized {}
