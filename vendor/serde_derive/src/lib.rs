//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, and nothing in the
//! workspace serializes through serde at runtime (there is no
//! `serde_json`/`bincode` consumer — the workload format is the hand
//! written `lla-spec` text format). The model types carry
//! `#[derive(Serialize, Deserialize)]` as forward-looking API surface;
//! here those derives expand to nothing, so the attributes parse and the
//! code compiles without generating any trait impls.

use proc_macro::TokenStream;

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
