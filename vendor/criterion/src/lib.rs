//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use. When the binary
//! is launched by `cargo bench` (cargo passes `--bench`), every benchmark
//! body runs once and its wall time is printed — a smoke measurement, not
//! a statistical one. Under any other invocation (e.g. `cargo test`
//! compiling/running bench targets in debug mode) the bodies are skipped
//! so the tier-1 test run stays fast; registration still executes, so a
//! broken bench fails to compile either way.

use std::fmt::Display;
use std::time::Instant;

/// Whether bench bodies should actually execute in this process.
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `name/parameter`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once and records its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        drop(out);
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub always runs once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !measuring() {
            return;
        }
        let mut b = Bencher::default();
        f(&mut b);
        println!(
            "bench {}/{id}: {:.3} ms (single run; offline criterion stub)",
            self.name,
            b.elapsed_ns as f64 / 1e6
        );
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) -> &mut Self {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.name;
        self.run(&name, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry object, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) -> &mut Self {
        let mut group = self.benchmark_group("crate");
        group.bench_function(id, f);
        self
    }
}

/// Opaque-use helper re-exported for API compatibility.
pub use std::hint::black_box;

/// Declares a group function invoking each registered bench function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
